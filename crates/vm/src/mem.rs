//! The memory bus abstraction the interpreter executes against, and the
//! fault model.
//!
//! The enclave runtime implements [`Bus`] over EPC pages with SGX permission
//! semantics (reads/writes/fetches are checked against the page permissions
//! fixed at `EADD`); unit tests use the permissionless [`FlatMemory`].

use std::fmt;

/// Size of a code page as seen by the interpreter's decode cache. Matches
/// the EPC page size so one execute-permission check covers one EPC page.
pub const CODE_PAGE_SIZE: u64 = 4096;

/// The kind of memory access that faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Access::Read => write!(f, "read"),
            Access::Write => write!(f, "write"),
            Access::Execute => write!(f, "execute"),
        }
    }
}

/// Faults raised during execution (the AEX analog: execution stops and the
/// host sees the fault; enclave state is not exposed).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmFault {
    /// Fetched bytes did not decode to a valid instruction — this is what
    /// happens when control reaches a sanitized (zeroed) function.
    IllegalInstruction {
        /// Address of the offending instruction.
        addr: u64,
    },
    /// An access violated page permissions (e.g. a store to non-writable
    /// text when the sanitizer did not set `PF_W`).
    AccessViolation {
        /// Faulting address.
        addr: u64,
        /// Access kind.
        access: Access,
    },
    /// An access touched unmapped memory.
    Unmapped {
        /// Faulting address.
        addr: u64,
        /// Access kind.
        access: Access,
    },
    /// Unsigned division or remainder by zero.
    DivideByZero {
        /// Address of the dividing instruction.
        addr: u64,
    },
    /// The fuel budget was exhausted (runaway guest protection).
    OutOfFuel,
    /// An intrinsic was invoked with an unknown number or bad arguments.
    BadIntrinsic {
        /// The intrinsic index.
        index: i32,
    },
    /// A bulk intrinsic (`MEMCPY`/`MEMSET`/`MEMCMP`/...) was invoked with
    /// malformed range arguments: zero length, a length over the bulk cap,
    /// a range that wraps the address space, or overlapping source and
    /// destination where overlap is forbidden.
    BadBulkArgs {
        /// The intrinsic index.
        index: i32,
    },
}

impl fmt::Display for VmFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmFault::IllegalInstruction { addr } => {
                write!(f, "illegal instruction at {addr:#x}")
            }
            VmFault::AccessViolation { addr, access } => {
                write!(f, "permission denied for {access} at {addr:#x}")
            }
            VmFault::Unmapped { addr, access } => {
                write!(f, "{access} of unmapped address {addr:#x}")
            }
            VmFault::DivideByZero { addr } => write!(f, "division by zero at {addr:#x}"),
            VmFault::OutOfFuel => write!(f, "instruction budget exhausted"),
            VmFault::BadIntrinsic { index } => write!(f, "bad intrinsic invocation {index}"),
            VmFault::BadBulkArgs { index } => {
                write!(f, "bad bulk-intrinsic arguments for intrinsic {index}")
            }
        }
    }
}

impl std::error::Error for VmFault {}

/// Memory bus used by the interpreter. All accesses may fault.
pub trait Bus {
    /// Loads `size` bytes (1, 2, 4 or 8) little-endian, zero-extended.
    ///
    /// # Errors
    ///
    /// Faults on unmapped addresses or insufficient permissions.
    fn load(&mut self, addr: u64, size: usize) -> Result<u64, VmFault>;

    /// Stores the low `size` bytes of `value` little-endian.
    ///
    /// # Errors
    ///
    /// Faults on unmapped addresses or insufficient permissions.
    fn store(&mut self, addr: u64, size: usize, value: u64) -> Result<(), VmFault>;

    /// Fetches 8 instruction bytes (requires execute permission).
    ///
    /// # Errors
    ///
    /// Faults on unmapped addresses or non-executable pages.
    fn fetch(&mut self, addr: u64) -> Result<[u8; 8], VmFault>;

    /// Services an `intrin` instruction. The default faults; buses that
    /// model an enclave override this with the trusted runtime services
    /// (SDK crypto, `EGETKEY`, `EREPORT`, bulk memory ops, ...).
    ///
    /// Returns the *extra* fuel the intrinsic consumed beyond the `intrin`
    /// instruction itself. Fixed-cost service intrinsics return 0; bulk
    /// intrinsics return a charge proportional to the bytes they moved so
    /// `retired`/fuel accounting stays meaningful.
    ///
    /// # Errors
    ///
    /// Returns a fault to abort the guest.
    fn intrinsic(
        &mut self,
        index: i32,
        _regs: &mut [u64; crate::isa::NUM_REGS],
    ) -> Result<u64, VmFault> {
        Err(VmFault::BadIntrinsic { index })
    }

    /// Generation stamp of the executable code page containing `page_addr`
    /// (which is [`CODE_PAGE_SIZE`]-aligned), or `None` if the bus does not
    /// support page-granular execution for this page and the interpreter
    /// must fetch instruction by instruction.
    ///
    /// A `Some(g)` result is a promise: as long as later calls keep
    /// returning `g`, neither the bytes nor the execute permission of the
    /// page have changed, so pre-decoded instructions may be served without
    /// touching the bus. Any write reaching the page, and any mapping
    /// change (page eviction/restore), must move the generation — this is
    /// the simulator's icache-coherence contract.
    fn exec_page_generation(&mut self, page_addr: u64) -> Option<u64> {
        let _ = page_addr;
        None
    }

    /// Copies the whole aligned code page at `page_addr` into `buf`,
    /// checking execute permission once for the entire page, and returns
    /// its generation stamp. Only called for pages where
    /// [`Bus::exec_page_generation`] returned `Some`.
    ///
    /// # Errors
    ///
    /// Faults if the page is unmapped or not executable.
    fn fetch_exec_page(
        &mut self,
        page_addr: u64,
        buf: &mut [u8; CODE_PAGE_SIZE as usize],
    ) -> Result<u64, VmFault> {
        let _ = buf;
        Err(VmFault::Unmapped { addr: page_addr, access: Access::Execute })
    }

    /// Stores like [`Bus::store`], and additionally reports the new
    /// data-page generation when the store stayed within one aligned page
    /// *and* the bus can stamp that page (`Ok(Some(gen))`). `Ok(None)`
    /// means the store succeeded but the page cannot be tracked — any
    /// cached copy of the touched page(s) must be dropped.
    ///
    /// This is the write-through half of the software data TLB ([`DTlb`]):
    /// the bus stays authoritative for permissions and side effects, the
    /// TLB only mirrors bytes it is told remain coherent.
    ///
    /// # Errors
    ///
    /// Faults exactly as [`Bus::store`] would.
    fn store_in_page(
        &mut self,
        addr: u64,
        size: usize,
        value: u64,
    ) -> Result<Option<u64>, VmFault> {
        self.store(addr, size, value)?;
        Ok(None)
    }

    /// Generation stamp of the aligned *data* page at `page_addr`, or
    /// `None` if the bus cannot promise coherence for it. The contract
    /// mirrors [`Bus::exec_page_generation`] but for reads/writes: as long
    /// as later calls keep returning the same `g`, the page's bytes and
    /// read permission are unchanged, so a cached copy may serve loads
    /// without touching the bus. Any write reaching the page and any
    /// mapping change (EWB/ELDU, permission change) must move it.
    fn data_page_generation(&mut self, page_addr: u64) -> Option<u64> {
        let _ = page_addr;
        None
    }

    /// Copies the whole aligned data page at `page_addr` into `buf` after a
    /// single read-permission check, returning its generation stamp, or
    /// `None` if the page is not cacheable (unmapped, not fully readable,
    /// or the bus cannot stamp it — e.g. under an armed EPC budget where
    /// pages may be evicted behind the TLB's back).
    fn data_page(
        &mut self,
        page_addr: u64,
        buf: &mut [u8; CODE_PAGE_SIZE as usize],
    ) -> Option<u64> {
        let _ = (page_addr, buf);
        None
    }

    /// Bulk read used by intrinsics; default loops over byte loads.
    ///
    /// # Errors
    ///
    /// Propagates the first faulting byte access.
    fn read_bytes(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, VmFault> {
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            out.push(self.load(addr + i as u64, 1)? as u8);
        }
        Ok(out)
    }

    /// Bulk write used by intrinsics; default loops over byte stores.
    ///
    /// # Errors
    ///
    /// Propagates the first faulting byte access.
    fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), VmFault> {
        for (i, &b) in data.iter().enumerate() {
            self.store(addr + i as u64, 1, b as u64)?;
        }
        Ok(())
    }
}

/// Fixed-width little-endian read of `size` bytes (1/2/4/8) from the front
/// of `d`, zero-extended. Shared by [`FlatMemory`] and the [`DTlb`] hit
/// path.
#[inline]
pub(crate) fn read_le_prim(d: &[u8], size: usize) -> u64 {
    match size {
        1 => d[0] as u64,
        2 => u16::from_le_bytes([d[0], d[1]]) as u64,
        4 => u32::from_le_bytes([d[0], d[1], d[2], d[3]]) as u64,
        8 => u64::from_le_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]]),
        _ => {
            let mut v = 0u64;
            for (i, &b) in d[..size].iter().enumerate() {
                v |= (b as u64) << (8 * i);
            }
            v
        }
    }
}

/// Fixed-width little-endian write of the low `size` bytes of `value`.
#[inline]
pub(crate) fn write_le_prim(d: &mut [u8], size: usize, value: u64) {
    let le = value.to_le_bytes();
    match size {
        1 => d[0] = le[0],
        2 => d[..2].copy_from_slice(&le[..2]),
        4 => d[..4].copy_from_slice(&le[..4]),
        8 => d[..8].copy_from_slice(&le[..8]),
        _ => d[..size].copy_from_slice(&le[..size]),
    }
}

/// A flat, fully readable/writable/executable memory region; the test bus.
#[derive(Debug, Clone)]
pub struct FlatMemory {
    base: u64,
    data: Vec<u8>,
    /// Bumped on every write; doubles as the code-page generation (every
    /// byte of a flat region is executable, so any write may be a code
    /// write).
    epoch: u64,
}

impl FlatMemory {
    /// Creates a region of `size` zero bytes starting at `base`.
    pub fn new(base: u64, size: usize) -> Self {
        FlatMemory { base, data: vec![0; size], epoch: 0 }
    }

    /// Copies `bytes` into the region at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds (test setup error).
    pub fn write_at(&mut self, addr: u64, bytes: &[u8]) {
        let off = (addr - self.base) as usize;
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
        self.epoch += 1;
    }

    /// Reads a slice at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds (test setup error).
    pub fn read_at(&self, addr: u64, len: usize) -> &[u8] {
        let off = (addr - self.base) as usize;
        &self.data[off..off + len]
    }

    #[inline]
    fn offset(&self, addr: u64, len: usize, access: Access) -> Result<usize, VmFault> {
        let off = addr.checked_sub(self.base).ok_or(VmFault::Unmapped { addr, access })?;
        // `off + len` can wrap for addresses near u64::MAX; that is an
        // Unmapped fault, not a panic.
        let end = off.checked_add(len as u64).ok_or(VmFault::Unmapped { addr, access })?;
        if end > self.data.len() as u64 {
            return Err(VmFault::Unmapped { addr, access });
        }
        Ok(off as usize)
    }
}

impl Bus for FlatMemory {
    #[inline]
    fn load(&mut self, addr: u64, size: usize) -> Result<u64, VmFault> {
        let off = self.offset(addr, size, Access::Read)?;
        // Fixed-width little-endian reads per size: the old byte loop (and
        // equally a runtime-length memcpy) dominated the cost of guest loads.
        Ok(read_le_prim(&self.data[off..], size))
    }

    #[inline]
    fn store(&mut self, addr: u64, size: usize, value: u64) -> Result<(), VmFault> {
        let off = self.offset(addr, size, Access::Write)?;
        write_le_prim(&mut self.data[off..], size, value);
        self.epoch += 1;
        Ok(())
    }

    fn fetch(&mut self, addr: u64) -> Result<[u8; 8], VmFault> {
        let off = self.offset(addr, 8, Access::Execute)?;
        Ok(self.data[off..off + 8].try_into().unwrap())
    }

    fn exec_page_generation(&mut self, page_addr: u64) -> Option<u64> {
        // Cacheable only when the whole page lies inside the region; a
        // partially mapped page falls back to per-instruction fetches so
        // edge faults keep their exact addresses.
        let off = page_addr.checked_sub(self.base)?;
        let end = off.checked_add(CODE_PAGE_SIZE)?;
        if end > self.data.len() as u64 {
            return None;
        }
        Some(self.epoch)
    }

    fn fetch_exec_page(
        &mut self,
        page_addr: u64,
        buf: &mut [u8; CODE_PAGE_SIZE as usize],
    ) -> Result<u64, VmFault> {
        let off = self.offset(page_addr, CODE_PAGE_SIZE as usize, Access::Execute)?;
        buf.copy_from_slice(&self.data[off..off + CODE_PAGE_SIZE as usize]);
        Ok(self.epoch)
    }

    fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), VmFault> {
        let off = self.offset(addr, data.len(), Access::Write)?;
        self.data[off..off + data.len()].copy_from_slice(data);
        self.epoch += 1;
        Ok(())
    }

    fn store_in_page(
        &mut self,
        addr: u64,
        size: usize,
        value: u64,
    ) -> Result<Option<u64>, VmFault> {
        self.store(addr, size, value)?;
        // Stampable only when the store stayed within one aligned page.
        if size > 0 && addr / CODE_PAGE_SIZE == (addr + size as u64 - 1) / CODE_PAGE_SIZE {
            Ok(Some(self.epoch))
        } else {
            Ok(None)
        }
    }

    fn data_page_generation(&mut self, page_addr: u64) -> Option<u64> {
        // Same cacheability rule as code pages: the whole page must lie
        // inside the region.
        let off = page_addr.checked_sub(self.base)?;
        let end = off.checked_add(CODE_PAGE_SIZE)?;
        if end > self.data.len() as u64 {
            return None;
        }
        Some(self.epoch)
    }

    fn data_page(
        &mut self,
        page_addr: u64,
        buf: &mut [u8; CODE_PAGE_SIZE as usize],
    ) -> Option<u64> {
        let gen = self.data_page_generation(page_addr)?;
        let off = (page_addr - self.base) as usize;
        buf.copy_from_slice(&self.data[off..off + CODE_PAGE_SIZE as usize]);
        Some(gen)
    }

    /// The bulk memory intrinsics (MEMCPY/MEMSET/MEMCMP), so VM-level
    /// tests can exercise the intrinsic paths — argument validation, fuel
    /// charging, engine parity — without a full enclave world. The crypto
    /// service intrinsics stay unimplemented here.
    fn intrinsic(
        &mut self,
        index: i32,
        regs: &mut [u64; crate::isa::NUM_REGS],
    ) -> Result<u64, VmFault> {
        use crate::isa::intrinsics;
        let check = |addr: u64, len: u64| -> Result<(), VmFault> {
            if len == 0 || len > intrinsics::BULK_MAX || addr.checked_add(len).is_none() {
                return Err(VmFault::BadBulkArgs { index });
            }
            Ok(())
        };
        match index {
            intrinsics::MEMCPY => {
                let (dst, src, len) = (regs[1], regs[2], regs[3]);
                check(dst, len)?;
                check(src, len)?;
                if dst < src + len && src < dst + len {
                    return Err(VmFault::BadBulkArgs { index });
                }
                let s = self.offset(src, len as usize, Access::Read)?;
                let d = self.offset(dst, len as usize, Access::Write)?;
                self.data.copy_within(s..s + len as usize, d);
                self.epoch += 1;
                regs[0] = 0;
                Ok(intrinsics::bulk_fuel(len))
            }
            intrinsics::MEMSET => {
                let (dst, byte, len) = (regs[1], regs[2] as u8, regs[3]);
                check(dst, len)?;
                let d = self.offset(dst, len as usize, Access::Write)?;
                self.data[d..d + len as usize].fill(byte);
                self.epoch += 1;
                regs[0] = 0;
                Ok(intrinsics::bulk_fuel(len))
            }
            intrinsics::MEMCMP => {
                let (a, b, len) = (regs[1], regs[2], regs[3]);
                check(a, len)?;
                check(b, len)?;
                let ao = self.offset(a, len as usize, Access::Read)?;
                let bo = self.offset(b, len as usize, Access::Read)?;
                let mut diff = 0u8;
                for i in 0..len as usize {
                    diff |= self.data[ao + i] ^ self.data[bo + i];
                }
                regs[0] = u64::from(diff != 0);
                Ok(intrinsics::bulk_fuel(len))
            }
            _ => Err(VmFault::BadIntrinsic { index }),
        }
    }
}

/// Number of entries in the software data TLB. Direct-mapped by page
/// index; must be a power of two.
pub const DTLB_ENTRIES: usize = 8;

/// One resident TLB line: a private copy of a guest data page plus the
/// generation stamp the bus vouched for it under.
#[derive(Clone)]
struct DTlbEntry {
    /// Page base address (aligned to [`CODE_PAGE_SIZE`]).
    page: u64,
    /// Generation the copy is coherent with ([`Bus::data_page_generation`]).
    gen: u64,
    /// The page bytes as of `gen`, kept exact by write-through.
    data: Box<[u8; CODE_PAGE_SIZE as usize]>,
}

/// A small software TLB over [`Bus`] data accesses — the safe replacement
/// for the raw-pointer fast path the workspace's `unsafe`-free rule
/// rejects.
///
/// Loads that hit a resident entry resolve with one tag compare and a
/// fixed-width slice read, skipping the bus's page-table walk and
/// permission checks (which were validated once at fill time and are
/// guaranteed unchanged by the generation contract). Stores always write
/// through to the bus first — it stays authoritative for permissions,
/// `os_readonly` windows and side effects — and the entry copy is either
/// updated in place (when [`Bus::store_in_page`] vouches a new generation)
/// or dropped.
///
/// Coherence invariant: an entry `(page, gen, data)` exists only while
/// `bus.data_page_generation(page) == Some(gen)` implies the page bytes
/// equal `data`. The engines uphold it by (a) routing every guest store
/// through [`DTlb::store`], and (b) calling [`DTlb::revalidate`] at every
/// point where memory may have changed behind the engine's back: run
/// entry (host writes between ecalls/ocalls) and after every intrinsic
/// (service intrinsics write guest memory). EWB/ELDU paging is handled by
/// the bus refusing to stamp pages while an EPC budget is armed, so no
/// entry can exist for an evictable page.
#[derive(Clone)]
pub struct DTlb {
    entries: [Option<DTlbEntry>; DTLB_ENTRIES],
    /// Page address of the last missing load per slot: a page is only
    /// promoted after two consecutive misses on its slot, so two pages
    /// alternating in one slot degrade to plain bus loads instead of
    /// ping-ponging 4 KiB fills.
    last_miss: [u64; DTLB_ENTRIES],
    hits: u64,
    misses: u64,
}

impl Default for DTlb {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for DTlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let resident: Vec<u64> = self.entries.iter().flatten().map(|e| e.page).collect();
        f.debug_struct("DTlb")
            .field("resident", &resident)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

impl DTlb {
    /// An empty TLB.
    pub fn new() -> Self {
        DTlb {
            entries: Default::default(),
            last_miss: [u64::MAX; DTLB_ENTRIES],
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn slot(page: u64) -> usize {
        (page / CODE_PAGE_SIZE) as usize & (DTLB_ENTRIES - 1)
    }

    /// Loads through the TLB; falls back to [`Bus::load`] on miss (and
    /// tries to promote the page for next time).
    ///
    /// # Errors
    ///
    /// Faults exactly as the underlying [`Bus::load`] would.
    #[inline]
    pub fn load<B: Bus + ?Sized>(
        &mut self,
        bus: &mut B,
        addr: u64,
        size: usize,
    ) -> Result<u64, VmFault> {
        let page = addr & !(CODE_PAGE_SIZE - 1);
        let off = (addr - page) as usize;
        if off + size <= CODE_PAGE_SIZE as usize {
            let slot = Self::slot(page);
            if let Some(e) = &self.entries[slot] {
                if e.page == page {
                    self.hits += 1;
                    return Ok(read_le_prim(&e.data[off..], size));
                }
            }
            self.misses += 1;
            if self.last_miss[slot] == page {
                // Second consecutive miss on this slot for the same page:
                // promote it. Reuse the evicted line's allocation if any.
                let mut data = match self.entries[slot].take() {
                    Some(e) => e.data,
                    None => Box::new([0u8; CODE_PAGE_SIZE as usize]),
                };
                if let Some(gen) = bus.data_page(page, &mut data) {
                    let value = read_le_prim(&data[off..], size);
                    self.entries[slot] = Some(DTlbEntry { page, gen, data });
                    return Ok(value);
                }
            } else {
                self.last_miss[slot] = page;
            }
        }
        bus.load(addr, size)
    }

    /// Stores write-through: the bus performs (and checks) the store, then
    /// the cached copy is patched in place or dropped.
    ///
    /// # Errors
    ///
    /// Faults exactly as the underlying [`Bus::store`] would; the affected
    /// entries are dropped on fault so a partially applied bus store can
    /// never leave a stale copy behind.
    #[inline]
    pub fn store<B: Bus + ?Sized>(
        &mut self,
        bus: &mut B,
        addr: u64,
        size: usize,
        value: u64,
    ) -> Result<(), VmFault> {
        let result = bus.store_in_page(addr, size, value);
        let page = addr & !(CODE_PAGE_SIZE - 1);
        let off = (addr - page) as usize;
        match result {
            Ok(Some(gen)) if off + size <= CODE_PAGE_SIZE as usize => {
                let slot = Self::slot(page);
                if let Some(e) = &mut self.entries[slot] {
                    if e.page == page {
                        write_le_prim(&mut e.data[off..], size, value);
                        e.gen = gen;
                    }
                }
                Ok(())
            }
            other => {
                // Untracked, page-crossing, or faulted: drop every entry
                // the store may have touched.
                self.invalidate_range(addr, size as u64);
                other.map(|_| ())
            }
        }
    }

    /// Drops entries overlapping `[addr, addr + len)`.
    fn invalidate_range(&mut self, addr: u64, len: u64) {
        let first = addr & !(CODE_PAGE_SIZE - 1);
        let last = addr.saturating_add(len.saturating_sub(1)) & !(CODE_PAGE_SIZE - 1);
        let mut page = first;
        loop {
            let slot = Self::slot(page);
            if let Some(e) = &self.entries[slot] {
                if e.page >= first && e.page <= last {
                    self.entries[slot] = None;
                }
            }
            if page >= last {
                break;
            }
            page += CODE_PAGE_SIZE;
        }
    }

    /// Re-checks every resident entry's generation against the bus and
    /// drops stale ones. Called at run entry and after intrinsics — the
    /// two points where guest memory may change without going through
    /// [`DTlb::store`].
    pub fn revalidate<B: Bus + ?Sized>(&mut self, bus: &mut B) {
        for e in &mut self.entries {
            let stale = match e {
                Some(entry) => bus.data_page_generation(entry.page) != Some(entry.gen),
                None => false,
            };
            if stale {
                *e = None;
            }
        }
    }

    /// Drops every entry (used when the coherence regime changes, e.g.
    /// arming an EPC budget).
    pub fn flush(&mut self) {
        for e in &mut self.entries {
            *e = None;
        }
        self.last_miss = [u64::MAX; DTLB_ENTRIES];
    }

    /// Loads served from a resident entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Loads that had to fall back to the bus (fills included).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_memory_load_store() {
        let mut m = FlatMemory::new(0x1000, 64);
        m.store(0x1000, 8, 0x0102030405060708).unwrap();
        assert_eq!(m.load(0x1000, 8).unwrap(), 0x0102030405060708);
        assert_eq!(m.load(0x1000, 1).unwrap(), 0x08); // little-endian
        assert_eq!(m.load(0x1004, 4).unwrap(), 0x01020304);
    }

    #[test]
    fn unmapped_faults() {
        let mut m = FlatMemory::new(0x1000, 16);
        assert!(matches!(m.load(0x0, 1), Err(VmFault::Unmapped { .. })));
        assert!(matches!(m.load(0x100F, 8), Err(VmFault::Unmapped { .. })));
        assert!(matches!(m.store(0x2000, 1, 0), Err(VmFault::Unmapped { .. })));
    }

    #[test]
    fn bulk_helpers() {
        let mut m = FlatMemory::new(0, 32);
        m.write_bytes(4, &[1, 2, 3]).unwrap();
        assert_eq!(m.read_bytes(4, 3).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn near_max_address_faults_instead_of_overflowing() {
        // `off + len` used to wrap for addresses near u64::MAX, turning an
        // Unmapped fault into a panic.
        let mut m = FlatMemory::new(0, 4096);
        assert!(matches!(m.load(u64::MAX - 3, 8), Err(VmFault::Unmapped { .. })));
        assert!(matches!(m.store(u64::MAX, 1, 0), Err(VmFault::Unmapped { .. })));
        assert!(matches!(m.fetch(u64::MAX - 7), Err(VmFault::Unmapped { .. })));
        let mut m = FlatMemory::new(u64::MAX - 15, 8);
        assert!(matches!(m.load(u64::MAX - 10, 8), Err(VmFault::Unmapped { .. })));
    }

    #[test]
    fn writes_move_the_epoch() {
        let mut m = FlatMemory::new(0, 4096);
        let g0 = m.exec_page_generation(0).unwrap();
        m.store(16, 8, 7).unwrap();
        let g1 = m.exec_page_generation(0).unwrap();
        assert_ne!(g0, g1);
        m.write_at(0, &[1]);
        assert_ne!(m.exec_page_generation(0).unwrap(), g1);
        // Partially mapped pages are not cacheable.
        let mut small = FlatMemory::new(0, 64);
        assert_eq!(small.exec_page_generation(0), None);
    }
}
