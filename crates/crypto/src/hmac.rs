//! HMAC-SHA256 (RFC 2104) and a small HKDF-style key-derivation helper.

use crate::sha2::Sha256;

/// HMAC-SHA256 context bound to one key: the ipad/opad key blocks are
/// absorbed into hasher states once at construction, so each message costs
/// two state clones instead of re-deriving the padded key blocks.
///
/// # Examples
///
/// ```
/// use elide_crypto::hmac::Hmac;
/// let mac = Hmac::new(b"key");
/// let tag = mac.mac(b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(tag[0], 0xf7);
/// ```
#[derive(Clone)]
pub struct Hmac {
    /// SHA-256 state with the ipad block already compressed.
    inner: Sha256,
    /// SHA-256 state with the opad block already compressed.
    outer: Sha256,
}

impl std::fmt::Debug for Hmac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak key-derived state through Debug output.
        f.debug_struct("Hmac").finish_non_exhaustive()
    }
}

impl Hmac {
    /// Prepares the keyed inner/outer states (keys longer than the 64-byte
    /// block are first hashed, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; 64];
        if key.len() > 64 {
            k[..32].copy_from_slice(&Sha256::digest(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; 64];
        let mut opad = [0x5cu8; 64];
        for i in 0..64 {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        Hmac { inner, outer }
    }

    /// Computes the tag over `data`.
    pub fn mac(&self, data: &[u8]) -> [u8; 32] {
        let mut inner = self.inner.clone();
        inner.update(data);
        let mut outer = self.outer.clone();
        outer.update(&inner.finalize());
        outer.finalize()
    }

    /// Verifies a tag over `data` without early exit on mismatching bytes.
    pub fn verify(&self, data: &[u8], tag: &[u8; 32]) -> bool {
        let expect = self.mac(data);
        let mut diff = 0u8;
        for (a, b) in expect.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

/// Computes HMAC-SHA256 of `data` under `key` (one-shot convenience; use
/// [`Hmac`] to amortize the key schedule across messages).
///
/// # Examples
///
/// ```
/// use elide_crypto::hmac::hmac_sha256;
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(tag[0], 0xf7);
/// ```
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    Hmac::new(key).mac(data)
}

/// Verifies an HMAC-SHA256 tag without early exit on mismatching bytes.
pub fn hmac_sha256_verify(key: &[u8], data: &[u8], tag: &[u8; 32]) -> bool {
    Hmac::new(key).verify(data, tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(hex(&tag), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    // RFC 4231 test case 6: key longer than block size.
    #[test]
    fn rfc4231_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(hex(&tag), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(hmac_sha256_verify(b"k", b"m", &tag));
        let mut bad = tag;
        bad[31] ^= 1;
        assert!(!hmac_sha256_verify(b"k", b"m", &bad));
        assert!(!hmac_sha256_verify(b"k2", b"m", &tag));
    }

    #[test]
    fn reused_context_matches_oneshot() {
        let mac = Hmac::new(b"shared key");
        for msg in [&b"first"[..], b"second", b"", &[0u8; 200]] {
            assert_eq!(mac.mac(msg), hmac_sha256(b"shared key", msg));
        }
    }
}
