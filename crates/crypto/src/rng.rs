//! Random-byte sources.
//!
//! A tiny trait so the rest of the project can use either the OS RNG (real
//! runs) or a seeded deterministic RNG (reproducible tests and benches).
//! Both generators are implemented from scratch — the crate builds with no
//! network access and no external dependencies.

#[cfg(unix)]
use std::cell::RefCell;
#[cfg(unix)]
use std::io::Read;

/// A source of random bytes.
pub trait RandomSource {
    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]);

    /// Returns a random `u64`.
    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_le_bytes(b)
    }
}

/// SplitMix64 step — used to expand seeds into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core (Blackman & Vigna): fast, 256-bit state, good
/// statistical quality. Not cryptographic — the cryptographic primitives
/// in this crate never rely on the *generator*, only on the seed entropy.
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro256 {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    fn next(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(unix)]
thread_local! {
    static OS_ENTROPY: RefCell<Option<std::fs::File>> = const { RefCell::new(None) };
}

/// Entropy of last resort on platforms with no OS entropy device: clock
/// nanos, a process-wide counter, and ASLR-influenced addresses, whitened
/// through SplitMix64. Never used where `/dev/urandom` is expected to
/// exist — a failure to read it there is a hard error, not a downgrade.
#[cfg_attr(unix, allow(dead_code))]
fn fallback_entropy(dest: &mut [u8]) {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0xDEAD_BEEF);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let stack_addr = &nanos as *const u64 as u64;
    let mut seed = nanos ^ count.rotate_left(32) ^ stack_addr.rotate_left(17);
    let mut gen = Xoshiro256::from_seed(splitmix64(&mut seed));
    gen.fill(dest);
}

/// OS-backed RNG, for production paths. Reads `/dev/urandom` (cached per
/// thread). On unix a failure to open or read the device panics rather
/// than silently degrading key material to clock/address entropy; the
/// weak fallback only exists for platforms without an entropy device.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsRandom;

impl RandomSource for OsRandom {
    #[cfg(unix)]
    fn fill(&mut self, dest: &mut [u8]) {
        OS_ENTROPY.with(|slot| {
            let mut slot = slot.borrow_mut();
            if slot.is_none() {
                let f = std::fs::File::open("/dev/urandom")
                    .expect("open /dev/urandom: refusing to fall back to weak entropy");
                *slot = Some(f);
            }
            slot.as_mut()
                .expect("urandom handle")
                .read_exact(dest)
                .expect("read /dev/urandom: refusing to fall back to weak entropy");
        });
    }

    #[cfg(not(unix))]
    fn fill(&mut self, dest: &mut [u8]) {
        fallback_entropy(dest);
    }
}

/// Seeded deterministic RNG, for tests and reproducible benches.
#[derive(Debug, Clone)]
pub struct SeededRandom(Xoshiro256);

impl SeededRandom {
    /// Creates a RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRandom(Xoshiro256::from_seed(seed))
    }

    /// Creates a RNG from a full-width 256-bit seed, preserving all of the
    /// seed's entropy in the generator state. Use this (never [`new`])
    /// whenever the seed carries cryptographic entropy — a 64-bit seed
    /// caps the state space at 2^64 regardless of what is drawn from it.
    ///
    /// [`new`]: SeededRandom::new
    pub fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        }
        if s == [0u64; 4] {
            // xoshiro must not start from the all-zero state.
            let mut sm = 0u64;
            s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
        }
        SeededRandom(Xoshiro256 { s })
    }
}

impl RandomSource for SeededRandom {
    fn fill(&mut self, dest: &mut [u8]) {
        self.0.fill(dest);
    }
}

/// A [`RandomSource`] that runs dry after a byte budget — fault injection
/// for chaos tests, standing in for an entropy device that stops
/// responding. The trait has no error channel (real generators cannot
/// fail), so exhaustion degrades to all-zero output; consumers must treat
/// a constant stream as hostile, never crash on it.
#[derive(Debug, Clone)]
pub struct FailingRandom {
    inner: Xoshiro256,
    budget: usize,
}

impl FailingRandom {
    /// Seeded source that yields `budget` good bytes, then only zeroes.
    pub fn new(seed: u64, budget: usize) -> Self {
        FailingRandom { inner: Xoshiro256::from_seed(seed), budget }
    }

    /// True once the source has started zero-filling.
    pub fn exhausted(&self) -> bool {
        self.budget == 0
    }
}

impl RandomSource for FailingRandom {
    fn fill(&mut self, dest: &mut [u8]) {
        let good = self.budget.min(dest.len());
        self.inner.fill(&mut dest[..good]);
        dest[good..].fill(0);
        self.budget -= good;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = SeededRandom::new(42);
        let mut b = SeededRandom::new(42);
        let mut x = [0u8; 32];
        let mut y = [0u8; 32];
        a.fill(&mut x);
        b.fill(&mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRandom::new(1);
        let mut b = SeededRandom::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unaligned_fill_lengths() {
        let mut r = SeededRandom::new(9);
        for len in [0usize, 1, 3, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            r.fill(&mut buf);
            assert_eq!(buf.len(), len);
        }
    }

    #[test]
    fn stream_is_not_constant() {
        let mut r = SeededRandom::new(3);
        let mut block = [0u8; 64];
        r.fill(&mut block);
        assert!(block.iter().any(|&b| b != block[0]), "degenerate stream");
    }

    #[test]
    fn seed_bytes_preserve_distinctness_beyond_64_bits() {
        // Two seeds identical in their first 8 bytes must still produce
        // different streams: the full 256 bits reach the state.
        let mut lo = [0u8; 32];
        let mut hi = [0u8; 32];
        lo[0] = 1;
        hi[0] = 1;
        hi[31] = 1;
        let mut a = SeededRandom::from_seed_bytes(lo);
        let mut b = SeededRandom::from_seed_bytes(hi);
        assert_ne!(a.next_u64(), b.next_u64());
        // Same seed bytes → same stream.
        let mut c = SeededRandom::from_seed_bytes(lo);
        let mut d = SeededRandom::from_seed_bytes(lo);
        assert_eq!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn all_zero_seed_bytes_are_not_degenerate() {
        let mut r = SeededRandom::from_seed_bytes([0u8; 32]);
        let mut block = [0u8; 64];
        r.fill(&mut block);
        assert!(block.iter().any(|&b| b != 0), "all-zero state must be avoided");
    }

    #[test]
    fn os_random_fills() {
        let mut r = OsRandom;
        let mut x = [0u8; 16];
        r.fill(&mut x);
        // All-zero output is astronomically unlikely.
        assert_ne!(x, [0u8; 16]);
    }

    #[test]
    fn failing_random_runs_dry_without_panicking() {
        let mut r = FailingRandom::new(7, 12);
        let mut first = [0u8; 8];
        r.fill(&mut first);
        assert_ne!(first, [0u8; 8]);
        assert!(!r.exhausted());
        // Second fill crosses the budget boundary mid-buffer.
        let mut second = [0xFFu8; 8];
        r.fill(&mut second);
        assert!(r.exhausted());
        assert_eq!(&second[4..], &[0u8; 4], "bytes past the budget are dead");
        // Every later draw is all zeroes, still no panic.
        let mut third = [0xFFu8; 16];
        r.fill(&mut third);
        assert_eq!(third, [0u8; 16]);
        assert_eq!(r.next_u64(), 0);
        // Determinism: the good prefix replays under the same seed.
        let mut again = FailingRandom::new(7, 12);
        let mut replay = [0u8; 8];
        again.fill(&mut replay);
        assert_eq!(replay, first);
    }

    #[test]
    fn fallback_entropy_differs_between_calls() {
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        fallback_entropy(&mut a);
        fallback_entropy(&mut b);
        assert_ne!(a, b);
    }
}
