//! Random-byte sources.
//!
//! A tiny trait so the rest of the project can use either the OS RNG (real
//! runs) or a seeded deterministic RNG (reproducible tests and benches).

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A source of random bytes.
pub trait RandomSource {
    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]);

    /// Returns a random `u64`.
    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_le_bytes(b)
    }
}

/// OS-backed RNG, for production paths.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsRandom;

impl RandomSource for OsRandom {
    fn fill(&mut self, dest: &mut [u8]) {
        rand::thread_rng().fill_bytes(dest);
    }
}

/// Seeded deterministic RNG, for tests and reproducible benches.
#[derive(Debug, Clone)]
pub struct SeededRandom(StdRng);

impl SeededRandom {
    /// Creates a RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRandom(StdRng::seed_from_u64(seed))
    }
}

impl RandomSource for SeededRandom {
    fn fill(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = SeededRandom::new(42);
        let mut b = SeededRandom::new(42);
        let mut x = [0u8; 32];
        let mut y = [0u8; 32];
        a.fill(&mut x);
        b.fill(&mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRandom::new(1);
        let mut b = SeededRandom::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn os_random_fills() {
        let mut r = OsRandom;
        let mut x = [0u8; 16];
        r.fill(&mut x);
        // All-zero output is astronomically unlikely.
        assert_ne!(x, [0u8; 16]);
    }
}
