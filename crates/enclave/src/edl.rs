//! A miniature EDL (Enclave Definition Language) front end.
//!
//! The Intel SDK generates ecall/ocall bridge functions from an `.edl`
//! file; this module does the same for EV64 enclaves: a declarative
//! description of the trusted/untrusted interface that drives the ecall
//! table generation and assigns stable ocall indices.
//!
//! # Syntax
//!
//! ```text
//! trusted {
//!     ecall get_answer;
//!     ecall check_password;
//! }
//! untrusted {
//!     ocall log_line;
//!     ocall read_asset = 120;   // explicit index
//! }
//! ```
//!
//! Ecall indices are assigned in declaration order; ocalls count up from
//! [`FIRST_OCALL_INDEX`] unless pinned explicitly (the SgxElide runtime
//! reserves 100–102).

use crate::error::EnclaveError;
use crate::image::EnclaveImageBuilder;
use elide_vm::asm::AsmError;

/// First auto-assigned ocall index (0–99 and the elide range are reserved).
pub const FIRST_OCALL_INDEX: i32 = 110;

/// A parsed interface definition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Edl {
    ecalls: Vec<String>,
    ocalls: Vec<(String, i32)>,
}

fn syntax_error(line: usize, msg: impl Into<String>) -> EnclaveError {
    EnclaveError::Asm(AsmError { line, msg: msg.into() })
}

impl Edl {
    /// Parses EDL source.
    ///
    /// # Errors
    ///
    /// Returns a line-tagged error for malformed declarations, duplicate
    /// names, or conflicting ocall indices.
    pub fn parse(source: &str) -> Result<Edl, EnclaveError> {
        #[derive(PartialEq)]
        enum Section {
            None,
            Trusted,
            Untrusted,
        }
        let mut section = Section::None;
        let mut edl = Edl::default();
        let mut next_ocall = FIRST_OCALL_INDEX;
        for (i, raw) in source.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.split("//").next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            match line {
                "trusted {" => section = Section::Trusted,
                "untrusted {" => section = Section::Untrusted,
                "}" => section = Section::None,
                decl => {
                    let decl = decl
                        .strip_suffix(';')
                        .ok_or_else(|| syntax_error(line_no, "missing trailing ';'"))?;
                    let mut parts = decl.split_whitespace();
                    let kind = parts.next().unwrap_or("");
                    let name = parts.next().unwrap_or("").to_string();
                    if name.is_empty() {
                        return Err(syntax_error(line_no, "missing function name"));
                    }
                    match (kind, &section) {
                        ("ecall", Section::Trusted) => {
                            if edl.ecalls.contains(&name) {
                                return Err(syntax_error(
                                    line_no,
                                    format!("duplicate ecall {name}"),
                                ));
                            }
                            if parts.next().is_some() {
                                return Err(syntax_error(line_no, "ecalls take no options"));
                            }
                            edl.ecalls.push(name);
                        }
                        ("ocall", Section::Untrusted) => {
                            let index = match (parts.next(), parts.next()) {
                                (None, _) => {
                                    let idx = next_ocall;
                                    next_ocall += 1;
                                    idx
                                }
                                (Some("="), Some(num)) => num.parse::<i32>().map_err(|_| {
                                    syntax_error(line_no, format!("bad ocall index {num:?}"))
                                })?,
                                _ => return Err(syntax_error(line_no, "expected `= <index>`")),
                            };
                            if edl.ocalls.iter().any(|(n, i)| *n == name || *i == index) {
                                return Err(syntax_error(
                                    line_no,
                                    format!("duplicate ocall name or index for {name}"),
                                ));
                            }
                            edl.ocalls.push((name, index));
                        }
                        ("ecall", _) => {
                            return Err(syntax_error(line_no, "ecall outside trusted section"))
                        }
                        ("ocall", _) => {
                            return Err(syntax_error(line_no, "ocall outside untrusted section"))
                        }
                        (other, _) => {
                            return Err(syntax_error(line_no, format!("unknown keyword {other:?}")))
                        }
                    }
                }
            }
        }
        Ok(edl)
    }

    /// Declared ecalls in index order.
    pub fn ecalls(&self) -> &[String] {
        &self.ecalls
    }

    /// Index of a declared ecall.
    pub fn ecall_index(&self, name: &str) -> Option<u64> {
        self.ecalls.iter().position(|e| e == name).map(|i| i as u64)
    }

    /// Index of a declared ocall.
    pub fn ocall_index(&self, name: &str) -> Option<i32> {
        self.ocalls.iter().find(|(n, _)| n == name).map(|(_, i)| *i)
    }

    /// Applies the trusted interface to an image builder (declares every
    /// ecall, in order).
    pub fn apply(&self, builder: &mut EnclaveImageBuilder) {
        for e in &self.ecalls {
            builder.ecall(e);
        }
    }

    /// Generates an assembly header of `OCALL_*` constants documenting the
    /// untrusted interface (comment block; EV64 has no symbolic constants,
    /// so guests use the numeric index with this as the reference).
    pub fn ocall_reference_asm(&self) -> String {
        let mut s = String::from("; --- ocall indices (generated from EDL) ---\n");
        for (name, idx) in &self.ocalls {
            s.push_str(&format!("; ocall {idx} = {name}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
trusted {
    ecall get_answer;
    ecall check_password;
}
untrusted {
    ocall log_line;            // auto index
    ocall read_asset = 120;
}
";

    #[test]
    fn parses_and_indexes() {
        let edl = Edl::parse(SAMPLE).unwrap();
        assert_eq!(edl.ecall_index("get_answer"), Some(0));
        assert_eq!(edl.ecall_index("check_password"), Some(1));
        assert_eq!(edl.ecall_index("nope"), None);
        assert_eq!(edl.ocall_index("log_line"), Some(FIRST_OCALL_INDEX));
        assert_eq!(edl.ocall_index("read_asset"), Some(120));
    }

    #[test]
    fn builds_an_enclave_image() {
        let edl = Edl::parse("trusted {\n    ecall f;\n}\n").unwrap();
        let mut b = EnclaveImageBuilder::new();
        b.source(".section text\n.global f\n.func f\n    movi r0, 1\n    ret\n.endfunc\n");
        edl.apply(&mut b);
        let image = b.build().unwrap();
        assert!(elide_elf::ElfFile::parse(image).is_ok());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Edl::parse("trusted {\n    ecall f\n}\n").is_err()); // missing ;
        assert!(Edl::parse("ecall f;\n").is_err()); // outside section
        assert!(Edl::parse("untrusted {\n    ocall x = twelve;\n}\n").is_err());
        assert!(Edl::parse("trusted {\n    ecall f;\n    ecall f;\n}\n").is_err());
        assert!(Edl::parse("untrusted {\n    ocall a = 5;\n    ocall b = 5;\n}\n").is_err());
        assert!(Edl::parse("trusted {\n    grant f;\n}\n").is_err());
    }

    #[test]
    fn comments_ignored() {
        let edl = Edl::parse("// header\ntrusted {\n    ecall f; // trailing\n}\n").unwrap();
        assert_eq!(edl.ecalls(), &["f".to_string()]);
    }

    #[test]
    fn reference_asm_lists_ocalls() {
        let edl = Edl::parse(SAMPLE).unwrap();
        let asm = edl.ocall_reference_asm();
        assert!(asm.contains("ocall 120 = read_asset"));
    }
}
