//! Resumption-ticket abuse: every way a ticket can go stale or hostile
//! must degrade to the full attested handshake, never to a broken or
//! over-privileged session.
//!
//! Four abuse shapes against the async provisioning plane:
//!
//! * **replay** — a redeemed blob presented again is rejected (tickets
//!   are single-use server-side);
//! * **wrong MRENCLAVE** — a well-sealed ticket naming an identity the
//!   store does not hold is rejected at redemption (the sealed identity
//!   is re-checked, a ticket cannot outlive its entry);
//! * **expired** — a ticket past its TTL is rejected and the client
//!   transparently falls back;
//! * **server restart** — a fresh server holds a fresh random ticket
//!   key, so every outstanding ticket is revoked at once.

use sgxelide::core::api::Platform;
use sgxelide::core::client::ProvisionClient;
use sgxelide::core::elide_asm::request;
use sgxelide::core::error::{ElideError, ServerError};
use sgxelide::core::meta::SecretMeta;
use sgxelide::core::protocol::{TcpTransport, Transport};
use sgxelide::core::server::{AuthServer, ExpectedIdentity};
use sgxelide::core::service::{serve, ServiceConfig, ServiceHandle};
use sgxelide::core::store::{SecretEntry, SecretStore};
use sgxelide::core::ticket::{now_ms, TicketPlain};
use sgxelide::core::transport::tcp::TcpAcceptor;
use sgxelide::crypto::rng::SeededRandom;
use sgxelide::crypto::rsa::RsaKeyPair;
use sgxelide::sgx::enclave::Enclave;
use sgxelide::sgx::epc::{PagePerms, PageType};
use sgxelide::sgx::quote::{AttestationService, QE_MEASUREMENT};
use sgxelide::sgx::report::{ereport, TargetInfo};
use sgxelide::sgx::sigstruct::SigStruct;
use std::sync::Arc;
use std::time::Duration;

const PAYLOAD: &[u8] = b"remote secret payload";

/// A provisioned platform plus one initialized enclave to attest from.
struct Fixture {
    platform: Platform,
    enclave: Enclave,
}

fn fixture(seed: u64) -> Fixture {
    let mut rng = SeededRandom::new(seed);
    // The registration of this scratch IAS is irrelevant; each server
    // gets its own IAS below with the platform's device key registered.
    let mut scratch = AttestationService::new();
    let platform = Platform::provision(&mut rng, &mut scratch);
    let mut e = platform.cpu.ecreate(0x100000, 0x1000).unwrap();
    e.eadd(0x100000, &[3; 4096], PagePerms::RX, PageType::Reg).unwrap();
    for i in 0..16 {
        e.eextend(0x100000 + i * 256).unwrap();
    }
    let kp = RsaKeyPair::generate(512, &mut rng);
    let sig = SigStruct::sign(&kp, e.current_measurement().unwrap(), 1, 1).unwrap();
    e.einit(&sig).unwrap();
    Fixture { platform, enclave: e }
}

impl Fixture {
    /// An attestation service that trusts this platform's quoting enclave.
    fn ias(&self) -> AttestationService {
        let mut ias = AttestationService::new();
        ias.register_device(self.platform.qe.device_public_key().clone());
        ias
    }

    /// A store holding one remote-mode secret pinned to the enclave.
    fn store(&self) -> SecretStore {
        let mut store = SecretStore::new();
        store.insert(SecretEntry {
            name: "tenant".into(),
            meta: SecretMeta {
                flags: 0, // remote mode: data travels on resume/DATA
                data_len: PAYLOAD.len() as u64,
                text_len: PAYLOAD.len() as u64,
                restore_offset: 0,
                key: [7; 16],
                iv: [8; 12],
                tag: [9; 16],
            },
            data: PAYLOAD.to_vec(),
            expected: ExpectedIdentity {
                mrenclave: Some(self.enclave.mrenclave()),
                mrsigner: None,
            },
        });
        store
    }

    /// The platform leg of attestation for [`ProvisionClient`]: ereport
    /// from the fixture enclave, quote through the quoting enclave.
    fn quote_fn(&self) -> impl FnMut([u8; 64]) -> Result<Vec<u8>, ElideError> + '_ {
        move |report_data| {
            let report =
                ereport(&self.enclave, &TargetInfo { mrenclave: QE_MEASUREMENT }, report_data)
                    .map_err(|e| ElideError::Transport(format!("ereport: {e}")))?;
            let quote = self
                .platform
                .qe
                .quote(&report)
                .map_err(|e| ElideError::Transport(format!("quote: {e}")))?;
            Ok(quote.to_bytes())
        }
    }
}

fn serve_tcp(server: &Arc<AuthServer>) -> (ServiceHandle, String) {
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr().unwrap().to_string();
    let handle = serve(acceptor, Arc::clone(server), ServiceConfig::default().with_workers(2));
    (handle, addr)
}

fn connect(addr: &str) -> TcpTransport {
    TcpTransport::connect(addr).expect("connect")
}

#[test]
fn replayed_ticket_is_rejected_and_full_handshake_recovers() {
    let fx = fixture(0x71C5E701);
    let server = Arc::new(AuthServer::with_store(fx.store(), fx.ias()));
    let (handle, addr) = serve_tcp(&server);
    let mut quote_fn = fx.quote_fn();

    // First launch: full handshake, secret fetch, ticket issued.
    let mut client = ProvisionClient::new();
    let mut t1 = connect(&addr);
    client.full_handshake(&mut t1, &mut quote_fn).expect("handshake");
    assert_eq!(client.fetch_data(&mut t1).expect("data"), PAYLOAD);
    client.request_ticket(&mut t1).expect("ticket");
    let blob = client.ticket_blob().expect("blob held").to_vec();
    drop(t1);

    // Relaunch: the ticket resumes in one round trip and is consumed.
    let mut t2 = connect(&addr);
    let (secret, fast) = client.try_resume(&mut t2, &mut quote_fn).expect("resume");
    assert!(fast, "fresh ticket must take the resume fast path");
    assert_eq!(secret.data, PAYLOAD);
    assert_eq!(server.resumptions(), 1);
    drop(t2);

    // Replay: the very same blob, already burned, on a new connection.
    let mut t3 = connect(&addr);
    match t3.request(request::RESUME as u8, &blob) {
        Err(ElideError::Server(ServerError::TicketRejected)) => {}
        other => panic!("replayed ticket must be TicketRejected, got {other:?}"),
    }

    // The same connection recovers with a full handshake.
    let mut fresh = ProvisionClient::new();
    fresh.full_handshake(&mut t3, &mut quote_fn).expect("fallback handshake");
    assert_eq!(fresh.fetch_data(&mut t3).expect("data"), PAYLOAD);
    drop(t3);

    assert_eq!(server.handshakes(), 2, "one initial + one fallback handshake");
    handle.shutdown();
}

#[test]
fn ticket_for_wrong_mrenclave_is_rejected_at_redemption() {
    let fx = fixture(0x71C5E702);
    let ticket_key = [0x42u8; 16];
    let server = Arc::new(AuthServer::with_store(fx.store(), fx.ias()).with_ticket_key(ticket_key));
    let (handle, addr) = serve_tcp(&server);
    let mut quote_fn = fx.quote_fn();

    // A perfectly sealed ticket (attacker knows the key in this test)
    // naming an identity the store does not hold: decryption succeeds,
    // but the store re-check at redemption must still reject it.
    let mut rng = SeededRandom::new(0x71C5E703);
    let forged = TicketPlain {
        mrenclave: [0xEE; 32],
        mrsigner: [0xEE; 32],
        channel_key: [5; 16],
        ticket_id: [6; 16],
        issued_ms: now_ms(),
        ttl_ms: 600_000,
    }
    .seal(&ticket_key, &mut rng);

    let mut t = connect(&addr);
    match t.request(request::RESUME as u8, &forged) {
        Err(ElideError::Server(ServerError::TicketRejected)) => {}
        other => panic!("unknown-identity ticket must be TicketRejected, got {other:?}"),
    }
    assert_eq!(server.resumptions(), 0);

    // The genuine enclave still authenticates the long way.
    let mut client = ProvisionClient::new();
    client.full_handshake(&mut t, &mut quote_fn).expect("full handshake");
    assert_eq!(client.fetch_data(&mut t).expect("data"), PAYLOAD);
    drop(t); // graceful shutdown waits for open connections
    handle.shutdown();
}

#[test]
fn expired_ticket_falls_back_to_full_handshake() {
    let fx = fixture(0x71C5E704);
    // Zero TTL: every issued ticket is already expired at redemption.
    let server =
        Arc::new(AuthServer::with_store(fx.store(), fx.ias()).with_ticket_ttl(Duration::ZERO));
    let (handle, addr) = serve_tcp(&server);
    let mut quote_fn = fx.quote_fn();

    let mut client = ProvisionClient::new();
    let mut t1 = connect(&addr);
    client.full_handshake(&mut t1, &mut quote_fn).expect("handshake");
    client.request_ticket(&mut t1).expect("ticket issued");
    assert!(client.has_ticket());
    drop(t1);

    let mut t2 = connect(&addr);
    let (secret, fast) = client.try_resume(&mut t2, &mut quote_fn).expect("relaunch");
    assert!(!fast, "expired ticket must fall back to the full handshake");
    assert_eq!(secret.data, PAYLOAD);
    assert_eq!(server.resumptions(), 0, "no resumed session was established");
    assert_eq!(server.handshakes(), 2, "initial + fallback");
    drop(t2); // graceful shutdown waits for open connections
    handle.shutdown();
}

#[test]
fn server_restart_revokes_outstanding_tickets() {
    let fx = fixture(0x71C5E705);
    let server1 = Arc::new(AuthServer::with_store(fx.store(), fx.ias()));
    let (handle1, addr1) = serve_tcp(&server1);
    let mut quote_fn = fx.quote_fn();

    let mut client = ProvisionClient::new();
    let mut t1 = connect(&addr1);
    client.full_handshake(&mut t1, &mut quote_fn).expect("handshake");
    client.request_ticket(&mut t1).expect("ticket");
    drop(t1);
    handle1.shutdown();

    // "Restart": a new server over the same store. Its ticket key is
    // freshly random, so the outstanding blob cannot even be opened.
    let server2 = Arc::new(AuthServer::with_store(fx.store(), fx.ias()));
    let (handle2, addr2) = serve_tcp(&server2);

    let mut t2 = connect(&addr2);
    let (secret, fast) = client.try_resume(&mut t2, &mut quote_fn).expect("relaunch");
    assert!(!fast, "restart must revoke the ticket; client falls back");
    assert_eq!(secret.data, PAYLOAD);
    assert_eq!(server2.resumptions(), 0);
    assert_eq!(server2.handshakes(), 1, "the fallback handshake");
    assert!(!client.has_ticket(), "the revoked ticket was consumed client-side");
    drop(t2); // graceful shutdown waits for open connections
    handle2.shutdown();
}

#[test]
fn future_dated_ticket_is_rejected_at_redemption() {
    let fx = fixture(0x71C5E706);
    let ticket_key = [0x51u8; 16];
    let server = Arc::new(AuthServer::with_store(fx.store(), fx.ias()).with_ticket_key(ticket_key));
    let (handle, addr) = serve_tcp(&server);
    let mut quote_fn = fx.quote_fn();

    // A well-sealed ticket for the *right* identity, dated one hour into
    // the future (a skewed or attacker-steered issuing clock). Accepting
    // it would let the ticket stay redeemable for its whole TTL after the
    // server's clock catches up — so redemption must refuse it now,
    // deterministically, regardless of TTL headroom.
    let mut rng = SeededRandom::new(0x71C5E707);
    let future = TicketPlain {
        mrenclave: fx.enclave.mrenclave(),
        mrsigner: [0xEE; 32],
        channel_key: [5; 16],
        ticket_id: [6; 16],
        issued_ms: now_ms() + 3_600_000,
        ttl_ms: 7_200_000,
    }
    .seal(&ticket_key, &mut rng);

    let mut t = connect(&addr);
    match t.request(request::RESUME as u8, &future) {
        Err(ElideError::Server(ServerError::TicketRejected)) => {}
        other => panic!("future-dated ticket must be TicketRejected, got {other:?}"),
    }
    assert_eq!(server.resumptions(), 0);

    // A ticket within the skew allowance is indistinguishable from an
    // honest just-issued one and still redeems through the normal path.
    let mut client = ProvisionClient::new();
    client.full_handshake(&mut t, &mut quote_fn).expect("handshake");
    client.request_ticket(&mut t).expect("ticket");
    drop(t);
    let mut t2 = connect(&addr);
    let (secret, fast) = client.try_resume(&mut t2, &mut quote_fn).expect("resume");
    assert!(fast, "honest ticket still takes the fast path");
    assert_eq!(secret.data, PAYLOAD);
    drop(t2); // graceful shutdown waits for open connections
    handle.shutdown();
}
