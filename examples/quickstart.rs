//! Quickstart: protect an enclave whose one function is a trade secret,
//! stand up the authentication server, and watch the secret go from dead
//! (sanitized) to alive (restored).
//!
//! Run with: `cargo run --example quickstart`

use sgxelide::core::api::{protect, Mode, Platform};
use sgxelide::core::elide_asm::ELIDE_ASM;
use sgxelide::core::protocol::InProcessTransport;
use sgxelide::core::restore::new_sealed_store;
use sgxelide::core::sanitizer::DataPlacement;
use sgxelide::crypto::rng::OsRandom;
use sgxelide::crypto::rsa::RsaKeyPair;
use sgxelide::enclave::image::EnclaveImageBuilder;
use sgxelide::sgx::quote::AttestationService;
use std::sync::{Arc, Mutex};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = OsRandom;

    // 1. Develop the enclave as usual; `get_answer` is the secret sauce.
    println!("[1] building enclave with the SgxElide runtime linked in");
    let mut builder = EnclaveImageBuilder::new();
    builder
        .source(ELIDE_ASM)
        .source(
            ".section text\n.global get_answer\n.func get_answer\n    movi r0, 42\n    ret\n.endfunc\n",
        )
        .ecall("get_answer")       // index 0
        .ecall("elide_restore"); // index 1
    let image = builder.build()?;

    // 2. Sanitize + sign (Figure 1's "Dummy Enclave Code Generation").
    println!("[2] sanitizing and signing (whitelist mode, remote data)");
    let vendor = RsaKeyPair::generate(512, &mut rng);
    let package = protect(&image, &vendor, &Mode::Whitelist, DataPlacement::Remote, &mut rng)?;
    println!(
        "    redacted {} function(s), {} byte(s)",
        package.sanitized_functions.len(),
        package.sanitized_functions.iter().map(|(_, s)| s).sum::<u64>()
    );

    // 3. Provision a platform and the developer's authentication server.
    println!("[3] provisioning SGX platform + authentication server");
    let mut ias = AttestationService::new();
    let platform = Platform::provision(&mut rng, &mut ias);
    let server = Arc::new(package.make_server(ias));
    let transport = Arc::new(Mutex::new(InProcessTransport::new(server)));

    // 4. Launch: EINIT succeeds (the *sanitized* measurement was signed),
    //    but the secret function faults if called.
    println!("[4] launching the sanitized enclave");
    let mut app = package.launch(&platform, transport, new_sealed_store(), 7)?;
    match app.runtime.ecall(0, &[], 0) {
        Err(e) => println!("    calling the secret before restore faults: {e}"),
        Ok(r) => println!("    unexpected success: {r:?}"),
    }

    // 5. The single developer-visible call (§3.4).
    println!("[5] elide_restore: attest, fetch, decrypt, self-modify, seal");
    let stats = app.restore(1)?;
    println!("    restored in {} guest instructions", stats.instructions);

    // 6. The secret is back.
    let r = app.runtime.ecall(0, &[], 0)?;
    println!("[6] get_answer() = {}", r.status);
    assert_eq!(r.status, 42);
    Ok(())
}
