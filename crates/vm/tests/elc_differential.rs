//! Differential testing of the Elc compiler: random expression trees are
//! evaluated by a direct Rust interpreter and by compiling + running the
//! generated EV64 code; the results must agree.

use elide_vm::asm::assemble;
use elide_vm::elc::compile;
use elide_vm::interp::{Exit, Vm};
use elide_vm::link::{link, LinkOptions};
use elide_vm::mem::FlatMemory;
use proptest::prelude::*;

/// Expression AST mirrored on both sides.
#[derive(Debug, Clone)]
enum E {
    A,
    B,
    Lit(u64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, Box<E>),
    Shr(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
    Not(Box<E>),
}

fn eval(e: &E, a: u64, b: u64) -> u64 {
    match e {
        E::A => a,
        E::B => b,
        E::Lit(v) => *v,
        E::Add(x, y) => eval(x, a, b).wrapping_add(eval(y, a, b)),
        E::Sub(x, y) => eval(x, a, b).wrapping_sub(eval(y, a, b)),
        E::Mul(x, y) => eval(x, a, b).wrapping_mul(eval(y, a, b)),
        E::And(x, y) => eval(x, a, b) & eval(y, a, b),
        E::Or(x, y) => eval(x, a, b) | eval(y, a, b),
        E::Xor(x, y) => eval(x, a, b) ^ eval(y, a, b),
        // Elc's shift semantics mask the amount to 6 bits (EV64 semantics).
        E::Shl(x, y) => eval(x, a, b) << (eval(y, a, b) & 63),
        E::Shr(x, y) => eval(x, a, b) >> (eval(y, a, b) & 63),
        E::Lt(x, y) => u64::from(eval(x, a, b) < eval(y, a, b)),
        E::Eq(x, y) => u64::from(eval(x, a, b) == eval(y, a, b)),
        E::Not(x) => u64::from(eval(x, a, b) == 0),
    }
}

fn to_src(e: &E) -> String {
    match e {
        E::A => "a".into(),
        E::B => "b".into(),
        E::Lit(v) => format!("{v}"),
        E::Add(x, y) => format!("({} + {})", to_src(x), to_src(y)),
        E::Sub(x, y) => format!("({} - {})", to_src(x), to_src(y)),
        E::Mul(x, y) => format!("({} * {})", to_src(x), to_src(y)),
        E::And(x, y) => format!("({} & {})", to_src(x), to_src(y)),
        E::Or(x, y) => format!("({} | {})", to_src(x), to_src(y)),
        E::Xor(x, y) => format!("({} ^ {})", to_src(x), to_src(y)),
        E::Shl(x, y) => format!("({} << {})", to_src(x), to_src(y)),
        E::Shr(x, y) => format!("({} >> {})", to_src(x), to_src(y)),
        E::Lt(x, y) => format!("({} < {})", to_src(x), to_src(y)),
        E::Eq(x, y) => format!("({} == {})", to_src(x), to_src(y)),
        E::Not(x) => format!("(!{})", to_src(x)),
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        Just(E::A),
        Just(E::B),
        (0u64..1_000_000).prop_map(E::Lit),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Add(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Sub(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Mul(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::And(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Or(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Xor(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Shl(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Shr(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Lt(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Eq(Box::new(x), Box::new(y))),
            inner.prop_map(|x| E::Not(Box::new(x))),
        ]
    })
}

fn run_compiled(src: &str, a: u64, b: u64) -> u64 {
    let asm = compile(src).expect("compile");
    let wrapper = "\
.section text
.global __start
.func __start
    call main
    halt
.endfunc
";
    let objs = vec![assemble(wrapper).unwrap(), assemble(&asm).unwrap()];
    let image = link(&objs, &LinkOptions { base: 0, entry: "__start".into() }).unwrap();
    let elf = elide_elf::ElfFile::parse(image).unwrap();
    let text = elf.section_by_name(".text").unwrap();
    let mut mem = FlatMemory::new(0, 1 << 20);
    mem.write_at(text.sh_addr, elf.section_data(text).unwrap());
    let mut vm = Vm::new(elf.header().e_entry);
    vm.set_sp((1 << 20) - 64);
    vm.regs[2] = a;
    vm.regs[3] = b;
    match vm.run(&mut mem, 10_000_000).expect("run") {
        Exit::Halt(v) => v,
        Exit::Ocall(_) => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn compiled_expressions_match_interpreter(e in arb_expr(), a in any::<u64>(), b in any::<u64>()) {
        let src = format!("fn main(a, b) {{ return {}; }}", to_src(&e));
        let expect = eval(&e, a, b);
        let got = run_compiled(&src, a, b);
        prop_assert_eq!(got, expect, "source: {}", src);
    }
}
