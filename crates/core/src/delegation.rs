//! Delegated enclave-to-enclave provisioning: peer-to-peer secret fan-out.
//!
//! The paper's protocol contacts the developer's authentication server on
//! every enclave launch. At fleet scale that server is the hot-path
//! bottleneck, so this module lets one *provisioned* enclave on a host act
//! as a **delegate secret server** for its neighbors:
//!
//! 1. The origin [`crate::server::AuthServer`] provisions delegate A the
//!    classic way (DH + remote attestation), then — over the same attested
//!    channel — hands it a [`DelegationBundle`]: a [`SignedPolicy`] naming
//!    the peer identities A may serve, plus the per-peer secrets, all
//!    signed by the origin's delegation key.
//! 2. A peer enclave B attests *locally*: it sends A a 160-byte
//!    local-attestation `Report` targeted at A's MRENCLAVE (the
//!    `EREPORT_TARGETED` intrinsic) with its DH public value bound into
//!    the report data.
//! 3. A verifies the report **inside the enclave** (the whitelisted
//!    `elide_verify_report` ecall → `VERIFY_REPORT` intrinsic: same
//!    processor, targeted at A), checks B against the signed policy, and
//!    serves B's secrets over the report-data-bound DH channel.
//!
//! The origin server is contacted **once per host** no matter how many
//! peers launch. Everything here fails closed: a revoked or expired
//! policy, a report that does not verify, an identity outside the policy,
//! or a tampered re-sealed payload all leave the peer's secret code
//! unexecutable (the peer falls back to the origin, or stays sanitized).

use crate::elide_asm::request;
use crate::error::{ElideError, ServerError};
use crate::meta::{SecretMeta, META_BODY_LEN};
use crate::protocol::{seal_msg_with, Transport};
use crate::ticket::MAX_CLOCK_SKEW_MS;
use elide_crypto::dh::DhKeyPair;
use elide_crypto::gcm::AesGcm;
use elide_crypto::rng::RandomSource;
use elide_crypto::rsa::RsaPublicKey;
use elide_crypto::sha2::Sha256;
use sgx_sim::report::Report;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Magic prefix of a serialized [`DelegationPolicy`].
pub const POLICY_MAGIC: &[u8; 8] = b"ELIDPOLI";
/// Magic prefix of a serialized [`DelegationBundle`].
pub const BUNDLE_MAGIC: &[u8; 8] = b"ELIDBNDL";

/// One peer identity a delegate is authorized to serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerGrant {
    /// Peer MRENCLAVE.
    pub mrenclave: [u8; 32],
    /// Peer MRSIGNER.
    pub mrsigner: [u8; 32],
}

/// The origin-authored authorization: which delegate may serve which
/// peers, and for how long.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelegationPolicy {
    /// MRENCLAVE of the authorized delegate. Peer reports must target
    /// exactly this measurement.
    pub delegate_mrenclave: [u8; 32],
    /// Unique policy id (revocation/audit handle).
    pub policy_id: [u8; 16],
    /// Issue time, milliseconds since the Unix epoch.
    pub issued_ms: u64,
    /// Validity window in milliseconds (0 = already expired).
    pub ttl_ms: u64,
    /// Identities the delegate may serve.
    pub peers: Vec<PeerGrant>,
}

impl DelegationPolicy {
    /// True when `(mrenclave, mrsigner)` appears in the grant list.
    pub fn permits(&self, mrenclave: &[u8; 32], mrsigner: &[u8; 32]) -> bool {
        self.peers.iter().any(|g| &g.mrenclave == mrenclave && &g.mrsigner == mrsigner)
    }

    /// Expiry check with the same clock-skew discipline as resumption
    /// tickets ([`crate::ticket::TicketPlain::expired_at`]): a zero TTL is
    /// always expired, and a policy issued more than [`MAX_CLOCK_SKEW_MS`]
    /// in the future is treated as forged rather than not-yet-valid.
    pub fn expired_at(&self, now: u64) -> bool {
        if self.ttl_ms == 0 || self.issued_ms > now.saturating_add(MAX_CLOCK_SKEW_MS) {
            return true;
        }
        now.saturating_sub(self.issued_ms) >= self.ttl_ms
    }

    /// Serializes to the canonical layout:
    /// `ELIDPOLI || delegate_mrenclave || policy_id || issued_ms || ttl_ms
    /// || peer_count u32 || (mrenclave, mrsigner)*`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 32 + 16 + 8 + 8 + 4 + self.peers.len() * 64);
        out.extend_from_slice(POLICY_MAGIC);
        out.extend_from_slice(&self.delegate_mrenclave);
        out.extend_from_slice(&self.policy_id);
        out.extend_from_slice(&self.issued_ms.to_le_bytes());
        out.extend_from_slice(&self.ttl_ms.to_le_bytes());
        out.extend_from_slice(&(self.peers.len() as u32).to_le_bytes());
        for g in &self.peers {
            out.extend_from_slice(&g.mrenclave);
            out.extend_from_slice(&g.mrsigner);
        }
        out
    }

    /// Parses the canonical layout; rejects trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 76 || &bytes[..8] != POLICY_MAGIC {
            return None;
        }
        let delegate_mrenclave: [u8; 32] = bytes[8..40].try_into().ok()?;
        let policy_id: [u8; 16] = bytes[40..56].try_into().ok()?;
        let issued_ms = u64::from_le_bytes(bytes[56..64].try_into().ok()?);
        let ttl_ms = u64::from_le_bytes(bytes[64..72].try_into().ok()?);
        let count = u32::from_le_bytes(bytes[72..76].try_into().ok()?) as usize;
        if bytes.len() != 76usize.checked_add(count.checked_mul(64)?)? {
            return None;
        }
        let mut peers = Vec::with_capacity(count);
        for i in 0..count {
            let off = 76 + i * 64;
            peers.push(PeerGrant {
                mrenclave: bytes[off..off + 32].try_into().ok()?,
                mrsigner: bytes[off + 32..off + 64].try_into().ok()?,
            });
        }
        Some(DelegationPolicy { delegate_mrenclave, policy_id, issued_ms, ttl_ms, peers })
    }
}

/// A [`DelegationPolicy`] plus the origin's RSA signature over its
/// canonical serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedPolicy {
    /// The policy.
    pub policy: DelegationPolicy,
    /// Origin signature over [`DelegationPolicy::to_bytes`].
    pub signature: Vec<u8>,
}

impl SignedPolicy {
    /// True when `key` (the origin's delegation public key) signed this
    /// exact policy.
    pub fn verify(&self, key: &RsaPublicKey) -> bool {
        key.verify(&self.policy.to_bytes(), &self.signature).is_ok()
    }

    /// Serializes as `[policy_len u32][policy][sig_len u32][sig]`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let policy = self.policy.to_bytes();
        let mut out = Vec::with_capacity(8 + policy.len() + self.signature.len());
        out.extend_from_slice(&(policy.len() as u32).to_le_bytes());
        out.extend_from_slice(&policy);
        out.extend_from_slice(&(self.signature.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parses the canonical layout; rejects trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let policy_len = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
        let mut off = 4;
        let policy = DelegationPolicy::from_bytes(bytes.get(off..off + policy_len)?)?;
        off += policy_len;
        let sig_len = u32::from_le_bytes(bytes.get(off..off + 4)?.try_into().ok()?) as usize;
        off += 4;
        let signature = bytes.get(off..off + sig_len)?.to_vec();
        off += sig_len;
        if off != bytes.len() {
            return None;
        }
        Some(SignedPolicy { policy, signature })
    }
}

/// The secret material a delegate re-serves to one peer identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerSecret {
    /// Peer MRENCLAVE this secret is for.
    pub mrenclave: [u8; 32],
    /// Peer MRSIGNER this secret is for.
    pub mrsigner: [u8; 32],
    /// The peer's secret metadata.
    pub meta: SecretMeta,
    /// The peer's secret data (empty in local mode).
    pub data: Vec<u8>,
}

/// What the origin hands a delegate over the attested channel: the signed
/// policy plus the secrets of every granted peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelegationBundle {
    /// The signed authorization.
    pub signed: SignedPolicy,
    /// Per-peer secrets, one entry per policy grant.
    pub secrets: Vec<PeerSecret>,
}

impl DelegationBundle {
    /// The secret entry for `(mrenclave, mrsigner)`, if granted.
    pub fn secret_for(&self, mrenclave: &[u8; 32], mrsigner: &[u8; 32]) -> Option<&PeerSecret> {
        self.secrets.iter().find(|s| &s.mrenclave == mrenclave && &s.mrsigner == mrsigner)
    }

    /// Serializes as `ELIDBNDL || [signed_len u32][signed] ||
    /// [count u32] || ([mrenclave][mrsigner][meta_body][data_len u32][data])*`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let signed = self.signed.to_bytes();
        let mut out = Vec::with_capacity(16 + signed.len());
        out.extend_from_slice(BUNDLE_MAGIC);
        out.extend_from_slice(&(signed.len() as u32).to_le_bytes());
        out.extend_from_slice(&signed);
        out.extend_from_slice(&(self.secrets.len() as u32).to_le_bytes());
        for s in &self.secrets {
            out.extend_from_slice(&s.mrenclave);
            out.extend_from_slice(&s.mrsigner);
            out.extend_from_slice(&s.meta.to_body());
            out.extend_from_slice(&(s.data.len() as u32).to_le_bytes());
            out.extend_from_slice(&s.data);
        }
        out
    }

    /// Parses the canonical layout; rejects trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 16 || &bytes[..8] != BUNDLE_MAGIC {
            return None;
        }
        let signed_len = u32::from_le_bytes(bytes[8..12].try_into().ok()?) as usize;
        let mut off = 12;
        let signed = SignedPolicy::from_bytes(bytes.get(off..off + signed_len)?)?;
        off += signed_len;
        let count = u32::from_le_bytes(bytes.get(off..off + 4)?.try_into().ok()?) as usize;
        off += 4;
        let mut secrets = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let mrenclave: [u8; 32] = bytes.get(off..off + 32)?.try_into().ok()?;
            off += 32;
            let mrsigner: [u8; 32] = bytes.get(off..off + 32)?.try_into().ok()?;
            off += 32;
            let meta = SecretMeta::from_body(bytes.get(off..off + META_BODY_LEN)?)?;
            off += META_BODY_LEN;
            let data_len = u32::from_le_bytes(bytes.get(off..off + 4)?.try_into().ok()?) as usize;
            off += 4;
            let data = bytes.get(off..off + data_len)?.to_vec();
            off += data_len;
            secrets.push(PeerSecret { mrenclave, mrsigner, meta, data });
        }
        if off != bytes.len() {
            return None;
        }
        Some(DelegationBundle { signed, secrets })
    }
}

/// In-enclave verification of a peer's local-attestation report — the
/// delegate-side trust anchor. Production delegates use
/// [`EcallReportVerifier`] (the whitelisted `elide_verify_report` ecall);
/// tests can substitute hostile or permissive verifiers.
pub trait ReportVerifier: Send {
    /// MRENCLAVE peers must target (the delegate's own measurement).
    fn delegate_mrenclave(&self) -> [u8; 32];
    /// True when the 160-byte serialized report carries a valid MAC under
    /// the delegate's report key (same processor, targeted at the
    /// delegate).
    fn verify(&mut self, report: &[u8]) -> bool;
}

/// [`ReportVerifier`] backed by a launched delegate enclave: each verify
/// is one `elide_verify_report` ecall (status 0 = genuine). The ecall is
/// whitelisted, so it works on an *unrestored* instance of the delegate
/// image — which is how a delegate can vouch for its own twin before any
/// peer (including that twin) holds the secret code.
pub struct EcallReportVerifier {
    app: Arc<Mutex<crate::api::LaunchedApp>>,
    ecall_index: u64,
    mrenclave: [u8; 32],
}

impl EcallReportVerifier {
    /// Wraps a launched instance of the delegate image. `ecall_index` is
    /// the image's `elide_verify_report` slot; `mrenclave` its
    /// measurement.
    pub fn new(
        app: Arc<Mutex<crate::api::LaunchedApp>>,
        ecall_index: u64,
        mrenclave: [u8; 32],
    ) -> Self {
        EcallReportVerifier { app, ecall_index, mrenclave }
    }
}

impl ReportVerifier for EcallReportVerifier {
    fn delegate_mrenclave(&self) -> [u8; 32] {
        self.mrenclave
    }

    fn verify(&mut self, report: &[u8]) -> bool {
        let mut app = self.app.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        matches!(app.runtime.ecall(self.ecall_index, report, 0), Ok(r) if r.status == 0)
    }
}

/// Per-peer channel state on the delegate (mirrors the origin's
/// [`crate::session::Session`], scoped to one peer connection).
struct PeerSession {
    channel: AesGcm,
    iv_salt: [u8; 4],
    seq: u64,
    secret: PeerSecret,
}

impl PeerSession {
    fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let mut iv = [0u8; 12];
        iv[..8].copy_from_slice(&self.seq.to_le_bytes());
        iv[8..].copy_from_slice(&self.iv_salt);
        self.seq += 1;
        seal_msg_with(&self.channel, &iv, plaintext)
    }
}

/// A host-resident delegate secret server: one provisioned enclave's
/// bundle, its in-enclave report verifier, and the serving state.
///
/// Construction validates the whole trust chain up front: the bundle's
/// policy signature against the origin's delegation key, the policy's
/// delegate measurement against the verifier's enclave, and the expiry
/// window. A delegate that fails any check never serves a single peer.
pub struct DelegateServer {
    bundle: DelegationBundle,
    verifier: Mutex<Box<dyn ReportVerifier>>,
    rng: Mutex<Box<dyn RandomSource + Send>>,
    served: AtomicU64,
    revoked: AtomicBool,
    online: AtomicBool,
}

impl std::fmt::Debug for DelegateServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DelegateServer")
            .field("peers", &self.bundle.signed.policy.peers.len())
            .field("served", &self.served.load(Ordering::Relaxed))
            .field("revoked", &self.revoked.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl DelegateServer {
    /// Validates the trust chain and stands up the delegate.
    ///
    /// # Errors
    ///
    /// [`ServerError::DelegationRejected`] when the policy signature does
    /// not verify under `origin_key`, the policy names a different
    /// delegate than `verifier`'s enclave, or the policy is expired (or
    /// future-dated beyond the skew allowance) at `now_ms`.
    pub fn new(
        bundle: DelegationBundle,
        origin_key: &RsaPublicKey,
        verifier: Box<dyn ReportVerifier>,
        rng: Box<dyn RandomSource + Send>,
        now_ms: u64,
    ) -> Result<Arc<Self>, ElideError> {
        if !bundle.signed.verify(origin_key) {
            return Err(ElideError::Server(ServerError::DelegationRejected));
        }
        if bundle.signed.policy.delegate_mrenclave != verifier.delegate_mrenclave() {
            return Err(ElideError::Server(ServerError::DelegationRejected));
        }
        if bundle.signed.policy.expired_at(now_ms) {
            return Err(ElideError::Server(ServerError::DelegationRejected));
        }
        Ok(Arc::new(DelegateServer {
            bundle,
            verifier: Mutex::new(verifier),
            rng: Mutex::new(rng),
            served: AtomicU64::new(0),
            revoked: AtomicBool::new(false),
            online: AtomicBool::new(true),
        }))
    }

    /// The validated policy.
    pub fn policy(&self) -> &DelegationPolicy {
        &self.bundle.signed.policy
    }

    /// Peer attestations served so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::SeqCst)
    }

    /// Revokes the delegate: every in-flight and future peer request is
    /// refused with [`ServerError::DelegationRejected`].
    pub fn revoke(&self) {
        self.revoked.store(true, Ordering::SeqCst);
    }

    /// True once revoked.
    pub fn is_revoked(&self) -> bool {
        self.revoked.load(Ordering::SeqCst)
    }

    /// Marks the delegate (un)reachable — models the delegate enclave
    /// being evicted mid-handshake. Offline delegates fail requests with a
    /// transport error, which peers treat as "fall back to the origin".
    pub fn set_online(&self, online: bool) {
        self.online.store(online, Ordering::SeqCst);
    }

    /// True while the delegate is serving.
    pub fn is_online(&self) -> bool {
        self.online.load(Ordering::SeqCst)
    }

    /// True when this delegate may serve `(mrenclave, mrsigner)` right
    /// now: online, unrevoked, unexpired, granted, and holding the secret.
    pub fn can_serve(&self, mrenclave: &[u8; 32], mrsigner: &[u8; 32], now_ms: u64) -> bool {
        self.is_online()
            && !self.is_revoked()
            && !self.policy().expired_at(now_ms)
            && self.policy().permits(mrenclave, mrsigner)
            && self.bundle.secret_for(mrenclave, mrsigner).is_some()
    }

    /// Opens a peer connection: a [`Transport`] speaking `PEER_ATTEST` /
    /// `META` / `DATA` / `PEER_RESTORE` against this delegate.
    pub fn connect(self: &Arc<Self>) -> DelegatePeerTransport {
        DelegatePeerTransport { server: Arc::clone(self), session: None }
    }

    fn peer_attest(&self, payload: &[u8]) -> Result<(Vec<u8>, PeerSession), ElideError> {
        use crate::ticket::now_ms;
        if self.is_revoked() {
            return Err(ElideError::Server(ServerError::DelegationRejected));
        }
        if self.policy().expired_at(now_ms()) {
            return Err(ElideError::Server(ServerError::DelegationRejected));
        }
        if payload.len() <= Report::SERIALIZED_LEN {
            return Err(ElideError::Server(ServerError::BadRequest));
        }
        let (report_bytes, peer_pub) = payload.split_at(Report::SERIALIZED_LEN);
        // The MAC check happens INSIDE the delegate enclave: only it holds
        // the report key for its own measurement.
        if !self
            .verifier
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .verify(report_bytes)
        {
            return Err(ElideError::Server(ServerError::DelegationRejected));
        }
        let report =
            Report::from_bytes(report_bytes).ok_or(ElideError::Server(ServerError::BadRequest))?;
        if !self.policy().permits(&report.mrenclave, &report.mrsigner) {
            return Err(ElideError::Server(ServerError::DelegationRejected));
        }
        // Same key-splicing defense as the origin handshake: the report
        // data must bind the DH public value.
        if report.report_data[..32] != Sha256::digest(peer_pub) {
            return Err(ElideError::Server(ServerError::BadBinding));
        }
        let secret = self
            .bundle
            .secret_for(&report.mrenclave, &report.mrsigner)
            .ok_or(ElideError::Server(ServerError::DelegationRejected))?
            .clone();
        let mut rng = self.rng.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // A fresh DH ephemeral per attestation: replaying a recorded
        // peer-attestation transcript yields a channel keyed to a secret
        // the replayer does not hold, so the sealed payload stays opaque.
        let kp = DhKeyPair::generate(rng.as_mut());
        let channel_key =
            kp.derive_session_key(peer_pub).ok_or(ElideError::Server(ServerError::BadBinding))?;
        let mut iv_salt = [0u8; 4];
        rng.fill(&mut iv_salt);
        drop(rng);
        let session = PeerSession {
            channel: AesGcm::new(&channel_key).expect("16-byte channel key"),
            iv_salt,
            seq: 0,
            secret,
        };
        self.served.fetch_add(1, Ordering::SeqCst);
        Ok((kp.public_bytes(), session))
    }
}

/// One peer's connection to a [`DelegateServer`]; implements [`Transport`]
/// so the routed restore ocalls (and [`crate::client::ProvisionClient`])
/// can speak to a delegate exactly like they speak to the origin.
pub struct DelegatePeerTransport {
    server: Arc<DelegateServer>,
    session: Option<PeerSession>,
}

impl std::fmt::Debug for DelegatePeerTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DelegatePeerTransport")
            .field("established", &self.session.is_some())
            .finish_non_exhaustive()
    }
}

impl Transport for DelegatePeerTransport {
    fn request(&mut self, req: u8, payload: &[u8]) -> Result<Vec<u8>, ElideError> {
        if !self.server.is_online() {
            // Matches a dead wire (the delegate enclave was evicted):
            // transient, so peers retry against the origin.
            return Err(ElideError::Transport("delegate offline".into()));
        }
        match req as u64 {
            // PEER_ATTEST replaces HANDSHAKE on the delegate leg; accept
            // both so the routed restore ocall can forward the guest's
            // HANDSHAKE verbatim (its payload is already `[report][pub]`).
            request::PEER_ATTEST | request::HANDSHAKE => {
                let (server_pub, session) = self.server.peer_attest(payload)?;
                self.session = Some(session);
                Ok(server_pub)
            }
            request::META => {
                let s = self.session.as_mut().ok_or(ElideError::Server(ServerError::NoSession))?;
                let body = s.secret.meta.to_body();
                Ok(s.seal(&body))
            }
            request::DATA => {
                let s = self.session.as_mut().ok_or(ElideError::Server(ServerError::NoSession))?;
                if s.secret.meta.is_local() {
                    return Err(ElideError::Server(ServerError::BadRequest));
                }
                let data = s.secret.data.clone();
                Ok(s.seal(&data))
            }
            request::PEER_RESTORE => {
                let s = self.session.as_mut().ok_or(ElideError::Server(ServerError::NoSession))?;
                let meta_body = s.secret.meta.to_body();
                let mut body = Vec::with_capacity(meta_body.len() + s.secret.data.len());
                body.extend_from_slice(&meta_body);
                if !s.secret.meta.is_local() {
                    body.extend_from_slice(&s.secret.data);
                }
                Ok(s.seal(&body))
            }
            other => Err(ElideError::Server(ServerError::UnknownRequest(other as u8))),
        }
    }
}

/// Host-wide registry of live delegates, consulted by
/// [`crate::service::pool::EnclavePool`] (and any launcher) before going
/// to the origin.
#[derive(Default)]
pub struct DelegateRegistry {
    delegates: RwLock<Vec<Arc<DelegateServer>>>,
}

impl std::fmt::Debug for DelegateRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DelegateRegistry").field("delegates", &self.len()).finish()
    }
}

impl DelegateRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registered delegates.
    pub fn len(&self) -> usize {
        self.delegates.read().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// True when no delegate is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registers a validated delegate.
    pub fn register(&self, delegate: Arc<DelegateServer>) {
        self.delegates.write().unwrap_or_else(std::sync::PoisonError::into_inner).push(delegate);
    }

    /// The first delegate currently able to serve `(mrenclave, mrsigner)`.
    pub fn delegate_for(
        &self,
        mrenclave: &[u8; 32],
        mrsigner: &[u8; 32],
    ) -> Option<Arc<DelegateServer>> {
        let now = crate::ticket::now_ms();
        self.delegates
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .find(|d| d.can_serve(mrenclave, mrsigner, now))
            .map(Arc::clone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elide_crypto::rng::SeededRandom;
    use elide_crypto::rsa::RsaKeyPair;

    fn sample_meta() -> SecretMeta {
        SecretMeta {
            flags: 0,
            data_len: 4,
            text_len: 4,
            restore_offset: 0,
            key: [1; 16],
            iv: [2; 12],
            tag: [3; 16],
        }
    }

    fn sample_policy() -> DelegationPolicy {
        DelegationPolicy {
            delegate_mrenclave: [0xA1; 32],
            policy_id: [7; 16],
            issued_ms: 1_000,
            ttl_ms: 60_000,
            peers: vec![
                PeerGrant { mrenclave: [0xB1; 32], mrsigner: [0xC1; 32] },
                PeerGrant { mrenclave: [0xB2; 32], mrsigner: [0xC2; 32] },
            ],
        }
    }

    #[test]
    fn policy_roundtrip_is_canonical() {
        let p = sample_policy();
        let bytes = p.to_bytes();
        assert_eq!(DelegationPolicy::from_bytes(&bytes), Some(p.clone()));
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(DelegationPolicy::from_bytes(&padded), None);
        assert_eq!(DelegationPolicy::from_bytes(&bytes[..bytes.len() - 1]), None);
        // Count field inconsistent with the byte length.
        let mut forged = bytes.clone();
        forged[72..76].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(DelegationPolicy::from_bytes(&forged), None);
    }

    #[test]
    fn policy_permits_and_expires() {
        let p = sample_policy();
        assert!(p.permits(&[0xB1; 32], &[0xC1; 32]));
        assert!(!p.permits(&[0xB1; 32], &[0xC2; 32]), "mrsigner must match too");
        assert!(!p.permits(&[0xB3; 32], &[0xC1; 32]));
        assert!(!p.expired_at(1_000));
        assert!(p.expired_at(61_000));
        // Future-dated beyond skew: dead immediately (same rule as tickets).
        let future = DelegationPolicy { issued_ms: 3_600_000, ..sample_policy() };
        assert!(future.expired_at(0));
        assert!(!future.expired_at(3_600_000));
    }

    #[test]
    fn signed_policy_verifies_and_rejects_tampering() {
        let mut rng = SeededRandom::new(3);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let policy = sample_policy();
        let signature = kp.sign(&policy.to_bytes()).unwrap();
        let signed = SignedPolicy { policy, signature };
        assert!(signed.verify(kp.public_key()));
        // A different key does not verify.
        let other = RsaKeyPair::generate(512, &mut rng);
        assert!(!signed.verify(other.public_key()));
        // Widening the grant list invalidates the signature.
        let mut widened = signed.clone();
        widened.policy.peers.push(PeerGrant { mrenclave: [9; 32], mrsigner: [9; 32] });
        assert!(!widened.verify(kp.public_key()));
        // Wire roundtrip is canonical.
        let bytes = signed.to_bytes();
        assert_eq!(SignedPolicy::from_bytes(&bytes), Some(signed));
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(SignedPolicy::from_bytes(&padded), None);
    }

    #[test]
    fn bundle_roundtrip_and_lookup() {
        let mut rng = SeededRandom::new(4);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let policy = sample_policy();
        let signature = kp.sign(&policy.to_bytes()).unwrap();
        let bundle = DelegationBundle {
            signed: SignedPolicy { policy, signature },
            secrets: vec![PeerSecret {
                mrenclave: [0xB1; 32],
                mrsigner: [0xC1; 32],
                meta: sample_meta(),
                data: b"peer secret".to_vec(),
            }],
        };
        let bytes = bundle.to_bytes();
        assert_eq!(DelegationBundle::from_bytes(&bytes), Some(bundle.clone()));
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(DelegationBundle::from_bytes(&padded), None);
        assert_eq!(DelegationBundle::from_bytes(&bytes[..bytes.len() - 1]), None);
        assert!(bundle.secret_for(&[0xB1; 32], &[0xC1; 32]).is_some());
        assert!(bundle.secret_for(&[0xB2; 32], &[0xC2; 32]).is_none());
    }
}
