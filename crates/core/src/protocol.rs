//! The client/server protocol (§5): single-byte requests, length-prefixed
//! frames, AES-GCM channel encryption after the attested handshake.

use crate::error::{ElideError, ServerError};
use crate::server::AuthServer;
use elide_crypto::gcm::AesGcm;
use elide_crypto::rng::RandomSource;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

/// Channel message overhead: 12-byte IV + 16-byte tag.
pub const CHANNEL_OVERHEAD: usize = 28;

/// Encrypts a channel message as `[iv 12][ct][tag 16]`.
pub fn encrypt_msg(key: &[u8; 16], plaintext: &[u8], rng: &mut dyn RandomSource) -> Vec<u8> {
    let gcm = AesGcm::new(key).expect("16-byte key");
    let mut iv = [0u8; 12];
    rng.fill(&mut iv);
    let (ct, tag) = gcm.seal(&iv, &[], plaintext);
    let mut out = Vec::with_capacity(CHANNEL_OVERHEAD + ct.len());
    out.extend_from_slice(&iv);
    out.extend_from_slice(&ct);
    out.extend_from_slice(&tag);
    out
}

/// Decrypts a channel message produced by [`encrypt_msg`].
///
/// # Errors
///
/// Returns [`ElideError::Transport`] on truncated or unauthentic messages.
pub fn decrypt_msg(key: &[u8; 16], msg: &[u8]) -> Result<Vec<u8>, ElideError> {
    if msg.len() < CHANNEL_OVERHEAD {
        return Err(ElideError::Transport("channel message too short".into()));
    }
    let gcm = AesGcm::new(key).expect("16-byte key");
    let iv: [u8; 12] = msg[..12].try_into().expect("12 bytes");
    let tag: [u8; 16] = msg[msg.len() - 16..].try_into().expect("16 bytes");
    gcm.open(&iv, &[], &msg[12..msg.len() - 16], &tag)
        .map_err(|_| ElideError::Transport("channel authentication failed".into()))
}

/// Client-side transport to the authentication server.
pub trait Transport {
    /// Sends request type `req` with `payload`, returning the response.
    ///
    /// # Errors
    ///
    /// Returns [`ElideError::Server`] for server-reported failures and
    /// [`ElideError::Transport`] for connection problems.
    fn request(&mut self, req: u8, payload: &[u8]) -> Result<Vec<u8>, ElideError>;
}

/// In-process transport: calls the server object directly. Fast path for
/// tests and single-process demos.
pub struct InProcessTransport {
    server: Arc<Mutex<AuthServer>>,
}

impl std::fmt::Debug for InProcessTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcessTransport").finish_non_exhaustive()
    }
}

impl InProcessTransport {
    /// Wraps a shared server.
    pub fn new(server: Arc<Mutex<AuthServer>>) -> Self {
        InProcessTransport { server }
    }
}

impl Transport for InProcessTransport {
    fn request(&mut self, req: u8, payload: &[u8]) -> Result<Vec<u8>, ElideError> {
        let mut server = self.server.lock().expect("server mutex poisoned");
        server.handle(req, payload).map_err(ElideError::Server)
    }
}

// ---------------------------------------------------------------------
// TCP transport (the paper's server.py runs over network sockets).
// Frame format:  request  = [req u8][len u32 LE][payload]
//                response = [status u8][len u32 LE][payload]
// status 0 = ok; otherwise a ServerError discriminant.
// ---------------------------------------------------------------------

/// Status byte for success.
const STATUS_OK: u8 = 0;

pub(crate) fn server_error_to_status(e: &ServerError) -> u8 {
    match e {
        ServerError::AttestationFailed => 1,
        ServerError::WrongEnclave => 2,
        ServerError::BadBinding => 3,
        ServerError::NoSession => 4,
        ServerError::BadRequest => 5,
        ServerError::UnknownRequest(_) => 6,
    }
}

pub(crate) fn status_to_server_error(status: u8) -> ServerError {
    match status {
        1 => ServerError::AttestationFailed,
        2 => ServerError::WrongEnclave,
        3 => ServerError::BadBinding,
        4 => ServerError::NoSession,
        5 => ServerError::BadRequest,
        other => ServerError::UnknownRequest(other),
    }
}

fn write_frame(stream: &mut TcpStream, tag: u8, payload: &[u8]) -> std::io::Result<()> {
    stream.write_all(&[tag])?;
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<(u8, Vec<u8>)> {
    let mut header = [0u8; 5];
    stream.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes")) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok((header[0], payload))
}

/// TCP transport to a [`crate::server::AuthServer`] served by
/// [`crate::server::serve_tcp`].
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connects to `addr` (e.g. `"127.0.0.1:7788"`).
    ///
    /// # Errors
    ///
    /// Returns [`ElideError::Transport`] if the connection fails.
    pub fn connect(addr: &str) -> Result<Self, ElideError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ElideError::Transport(format!("connect {addr}: {e}")))?;
        stream.set_nodelay(true).ok();
        Ok(TcpTransport { stream })
    }
}

impl Transport for TcpTransport {
    fn request(&mut self, req: u8, payload: &[u8]) -> Result<Vec<u8>, ElideError> {
        write_frame(&mut self.stream, req, payload)
            .map_err(|e| ElideError::Transport(format!("send: {e}")))?;
        let (status, body) = read_frame(&mut self.stream)
            .map_err(|e| ElideError::Transport(format!("recv: {e}")))?;
        if status == STATUS_OK {
            Ok(body)
        } else {
            Err(ElideError::Server(status_to_server_error(status)))
        }
    }
}

/// Serves one TCP connection against the shared server state with its own
/// [`crate::server::SessionState`]; returns when the peer disconnects.
/// Concurrent connections never share a channel key.
pub(crate) fn serve_connection(
    stream: &mut TcpStream,
    server: &Arc<Mutex<AuthServer>>,
) -> std::io::Result<()> {
    let mut session = crate::server::SessionState::new();
    loop {
        let (req, payload) = match read_frame(stream) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        let result = {
            let mut s = server.lock().expect("server mutex poisoned");
            s.handle_with_session(&mut session, req, &payload)
        };
        match result {
            Ok(body) => write_frame(stream, STATUS_OK, &body)?,
            Err(e) => write_frame(stream, server_error_to_status(&e), &[])?,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elide_crypto::rng::SeededRandom;

    #[test]
    fn channel_roundtrip() {
        let key = [5u8; 16];
        let mut rng = SeededRandom::new(1);
        let msg = encrypt_msg(&key, b"the secret text section", &mut rng);
        assert_eq!(msg.len(), b"the secret text section".len() + CHANNEL_OVERHEAD);
        assert_eq!(decrypt_msg(&key, &msg).unwrap(), b"the secret text section");
    }

    #[test]
    fn channel_rejects_wrong_key_and_tamper() {
        let mut rng = SeededRandom::new(1);
        let msg = encrypt_msg(&[5u8; 16], b"data", &mut rng);
        assert!(decrypt_msg(&[6u8; 16], &msg).is_err());
        let mut bad = msg.clone();
        bad[13] ^= 1;
        assert!(decrypt_msg(&[5u8; 16], &bad).is_err());
        assert!(decrypt_msg(&[5u8; 16], &msg[..20]).is_err());
    }

    #[test]
    fn status_mapping_roundtrip() {
        for e in [
            ServerError::AttestationFailed,
            ServerError::WrongEnclave,
            ServerError::BadBinding,
            ServerError::NoSession,
            ServerError::BadRequest,
        ] {
            assert_eq!(status_to_server_error(server_error_to_status(&e)), e);
        }
    }
}
