//! # elide-vm
//!
//! EV64: the bytecode ISA that plays the role of x86-64 for simulated
//! enclaves, with the full toolchain the SgxElide pipeline needs:
//!
//! * [`isa`] — fixed-width 8-byte instructions; opcode `0x00` is illegal so
//!   sanitized (zeroed) code faults deterministically when executed.
//! * [`asm`] — a line-oriented assembler producing relocatable objects.
//! * [`elc`] — a small imperative language compiling to EV64 assembly.
//! * [`obj`] — the object format (sections, symbols, relocations).
//! * [`link`] — a two-pass linker emitting enclave ELF images.
//! * [`interp`] — the interpreter; every access goes through a [`mem::Bus`],
//!   which is how EPC page permissions are enforced.
//! * [`dcache`] — the page-granular decode cache (the interpreter's
//!   "icache"), invalidated by generation when code pages change.
//! * [`trans`] — superblock translation over the decode cache: fused
//!   macro-ops and per-block fuel so hot paths skip per-instruction
//!   dispatch entirely.
//! * [`disasm`] — the attacker's disassembler.
//!
//! # Examples
//!
//! ```
//! use elide_vm::{asm::assemble, interp::{Exit, Vm}, mem::FlatMemory};
//!
//! let obj = assemble(
//!     ".section text\n.global main\n.func main\n    movi r0, 41\n    addi r0, r0, 1\n    halt\n.endfunc\n",
//! ).unwrap();
//! let mut mem = FlatMemory::new(0, 4096);
//! mem.write_at(0, &obj.section("text").unwrap().bytes);
//! let mut vm = Vm::new(0);
//! vm.set_sp(4096);
//! assert_eq!(vm.run(&mut mem, 100).unwrap(), Exit::Halt(42));
//! ```

#![forbid(unsafe_code)]
pub mod asm;
pub mod dcache;
pub mod disasm;
pub mod elc;
pub mod interp;
pub mod isa;
pub mod link;
pub mod mem;
pub mod obj;
pub mod trans;
