//! Service layer: a bounded worker pool serving any [`Listener`] against a
//! shared [`AuthServer`], with graceful shutdown.
//!
//! The accept thread hands connections to `workers` (default:
//! `available_parallelism`) over a bounded queue, so a connection flood
//! backpressures at accept instead of spawning unbounded threads. Each
//! worker drives [`serve_connection`] — the single framing/session loop
//! shared by the TCP and in-process transports.

use crate::faults::FaultPlan;
use crate::protocol::{server_error_to_status, STATUS_OK};
use crate::server::AuthServer;
use crate::transport::{BoxedWire, Framed, Limits, Listener};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Tuning for one running service.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (connections served concurrently). Defaults to
    /// `available_parallelism`.
    pub workers: usize,
    /// Wire limits applied to every accepted connection.
    pub limits: Limits,
    /// Stop accepting after this many connections (`None` = unlimited).
    /// Queued and in-flight connections are still served to completion.
    pub max_connections: Option<usize>,
    /// Fault-injection plan (worker panics). `None` in production.
    pub faults: Option<FaultPlan>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: default_workers(),
            limits: Limits::default(),
            max_connections: None,
            faults: None,
        }
    }
}

impl ServiceConfig {
    /// Config with a connection cap (CLI `--connections` semantics).
    pub fn with_max_connections(mut self, max: Option<usize>) -> Self {
        self.max_connections = max;
        self
    }

    /// Config with an explicit worker count (0 means one worker).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Config with different wire limits.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Config with a fault-injection plan (chaos testing).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// The default worker-pool size.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Handle to a running service.
pub struct ServiceHandle {
    closer: Box<dyn Fn() + Send + Sync>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    desc: String,
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("desc", &self.desc)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ServiceHandle {
    /// Bound-address description of the served listener.
    pub fn desc(&self) -> &str {
        &self.desc
    }

    /// Stops accepting, serves queued and in-flight connections to
    /// completion, and joins all threads.
    pub fn shutdown(mut self) {
        (self.closer)();
        self.join_threads();
    }

    /// Waits for the service to finish on its own (listener closed or
    /// `max_connections` reached and all connections served).
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

/// Serves `listener` against `server` on a bounded worker pool. Returns
/// immediately; use the handle to shut down or join.
pub fn serve<L: Listener + 'static>(
    mut listener: L,
    server: Arc<AuthServer>,
    config: ServiceConfig,
) -> ServiceHandle {
    let desc = listener.local_desc();
    let closer = listener.closer();
    let workers = config.workers.max(1);
    // Bounded queue: a flood of connections blocks accept, not memory.
    let (tx, rx) = sync_channel::<BoxedWire>(workers * 2);
    let rx = Arc::new(Mutex::new(rx));

    let worker_threads: Vec<JoinHandle<()>> = (0..workers)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let server = Arc::clone(&server);
            let limits = config.limits;
            let faults = config.faults.clone();
            std::thread::spawn(move || worker_loop(&rx, &server, limits, faults.as_ref()))
        })
        .collect();

    let max = config.max_connections;
    let accept = std::thread::spawn(move || {
        let mut served = 0usize;
        while let Some(wire) = listener.accept() {
            if tx.send(wire).is_err() {
                break;
            }
            served += 1;
            if max.is_some_and(|m| served >= m) {
                break;
            }
        }
        // Dropping the sender lets workers drain the queue and exit.
    });

    ServiceHandle { closer, accept: Some(accept), workers: worker_threads, desc }
}

fn worker_loop(
    rx: &Mutex<Receiver<BoxedWire>>,
    server: &AuthServer,
    limits: Limits,
    faults: Option<&FaultPlan>,
) {
    loop {
        // Holding the lock while blocked in recv is fine: any handed-off
        // connection wakes exactly one idle worker, and busy workers are
        // not in this loop. A panic between lock and unlock poisons the
        // mutex; recover the guard so one crashed worker cannot wedge the
        // whole pool behind a poisoned queue.
        let conn = {
            let guard = rx.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            guard.recv()
        };
        match conn {
            Ok(wire) => {
                // One connection's panic must not kill the worker: before
                // this guard, a single panicking connection permanently
                // shrank the pool (with one worker, the service stopped
                // serving and every later client hung until its timeout).
                let result = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(plan) = faults {
                        if plan.worker_panic_now() {
                            panic!("injected worker panic");
                        }
                    }
                    if let Ok(mut framed) = Framed::new(wire, limits) {
                        let _ = serve_connection(server, &mut framed);
                    }
                }));
                // The connection (and its wire) died with the panic; the
                // worker lives on to serve the next one.
                drop(result);
            }
            Err(_) => return, // accept loop gone and queue drained
        }
    }
}

/// Serves one connection: frames in, session state machine, frames out.
/// Returns when the peer disconnects cleanly; wire abuse (oversized
/// declared lengths, truncated frames, read timeouts) drops the
/// connection with the error.
///
/// This is the single server-side protocol loop — the in-process and TCP
/// transports both land here, so there is exactly one handshake path.
///
/// # Errors
///
/// Propagates wire-level I/O errors (the connection is dead either way).
pub fn serve_connection<W: crate::transport::Wire>(
    server: &AuthServer,
    framed: &mut Framed<W>,
) -> io::Result<()> {
    let mut session = server.new_session();
    loop {
        match framed.recv()? {
            Some((req, payload)) => match session.handle(server, req, &payload) {
                Ok(body) => framed.send(STATUS_OK, &body)?,
                Err(e) => framed.send(server_error_to_status(&e), &[])?,
            },
            None => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::SecretMeta;
    use crate::server::ExpectedIdentity;
    use crate::transport::channel::channel_listener;
    use crate::transport::tcp::TcpAcceptor;
    use elide_crypto::rng::SeededRandom;
    use sgx_sim::quote::AttestationService;

    fn test_server() -> Arc<AuthServer> {
        let meta = SecretMeta {
            flags: 0,
            data_len: 4,
            text_len: 4,
            restore_offset: 0,
            key: [1; 16],
            iv: [2; 12],
            tag: [3; 16],
        };
        Arc::new(
            AuthServer::new(
                meta,
                b"data".to_vec(),
                ExpectedIdentity::default(),
                AttestationService::new(),
            )
            .with_rng(Box::new(SeededRandom::new(1))),
        )
    }

    #[test]
    fn serves_channel_clients_and_shuts_down() {
        let (listener, host) = channel_listener();
        let handle = serve(listener, test_server(), ServiceConfig::default().with_workers(2));
        for _ in 0..4 {
            let wire = host.connect().unwrap();
            let mut framed = Framed::new(wire, Limits::default()).unwrap();
            // Unknown request: the session must answer with a status frame.
            framed.send(9, &[]).unwrap();
            let (status, body) = framed.recv().unwrap().expect("response");
            assert_eq!(status, 6, "UnknownRequest status");
            assert!(body.is_empty());
        }
        handle.shutdown();
        assert!(
            host.connect().is_err() || {
                // Shutdown raced the connect; either way no response comes.
                true
            }
        );
    }

    #[test]
    fn serves_tcp_clients_with_max_connections() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        let handle = serve(
            acceptor,
            test_server(),
            ServiceConfig::default().with_workers(2).with_max_connections(Some(2)),
        );
        for _ in 0..2 {
            let stream = std::net::TcpStream::connect(addr).unwrap();
            let mut framed = Framed::new(stream, Limits::default()).unwrap();
            framed.send(1, &[]).unwrap();
            let (status, _) = framed.recv().unwrap().expect("response");
            assert_eq!(status, 4, "NoSession status");
        }
        handle.join();
    }

    #[test]
    fn worker_pool_survives_connection_panics() {
        use crate::faults::{FaultConfig, FaultPlan, PPM};
        // Regression: a worker that panicked mid-connection died silently,
        // shrinking the pool; with one worker the service stopped serving
        // and later clients hung until their read timeout.
        crate::faults::silence_injected_panics();
        let plan = FaultPlan::new(
            11,
            FaultConfig { worker_panic_ppm: PPM, worker_panic_limit: 1, ..FaultConfig::off() },
        );
        let (listener, host) = channel_listener();
        let handle = serve(
            listener,
            test_server(),
            ServiceConfig::default().with_workers(1).with_faults(plan.clone()),
        );

        // First connection: the (sole) worker panics; the client sees the
        // connection drop without a response.
        let wire = host.connect().unwrap();
        let mut framed = Framed::new(wire, Limits::default()).unwrap();
        framed.send(9, &[]).unwrap();
        assert_eq!(framed.recv().unwrap(), None, "panicked connection drops cleanly");
        assert_eq!(plan.counts().worker_panics, 1);

        // Second connection: the same worker must still be alive.
        let wire = host.connect().unwrap();
        let mut framed = Framed::new(wire, Limits::default()).unwrap();
        framed.send(9, &[]).unwrap();
        let (status, _) = framed.recv().unwrap().expect("worker survived the panic");
        assert_eq!(status, 6, "UnknownRequest status");
        handle.shutdown();
    }

    #[test]
    fn store_io_fault_sits_behind_authentication() {
        use crate::faults::{FaultConfig, FaultPlan, PPM};
        // Store faults fire on META/DATA of an *established* session (the
        // chaos suite exercises that path end-to-end); an unauthenticated
        // request must still answer NoSession, not Internal.
        let server = Arc::new(
            AuthServer::new(
                SecretMeta {
                    flags: 0,
                    data_len: 4,
                    text_len: 4,
                    restore_offset: 0,
                    key: [1; 16],
                    iv: [2; 12],
                    tag: [3; 16],
                },
                b"data".to_vec(),
                ExpectedIdentity::default(),
                AttestationService::new(),
            )
            .with_rng(Box::new(SeededRandom::new(2)))
            .with_faults(FaultPlan::new(
                3,
                FaultConfig { store_io_ppm: PPM, ..FaultConfig::off() },
            )),
        );
        // No attested session: NoSession (4) outranks the injected fault,
        // proving injection sits behind authentication, not in front.
        let (listener, host) = channel_listener();
        let handle = serve(listener, server, ServiceConfig::default().with_workers(1));
        let wire = host.connect().unwrap();
        let mut framed = Framed::new(wire, Limits::default()).unwrap();
        framed.send(1, &[]).unwrap();
        let (status, _) = framed.recv().unwrap().expect("response");
        assert_eq!(status, 4, "store faults only fire on established sessions");
        handle.shutdown();
    }

    #[test]
    fn oversized_frame_drops_connection() {
        let (listener, host) = channel_listener();
        let limits = Limits::default().with_max_frame(64);
        let handle = serve(
            listener,
            test_server(),
            ServiceConfig::default().with_workers(1).with_limits(limits),
        );
        let wire = host.connect().unwrap();
        // Client side uses generous limits so it can send the abuse.
        let mut framed = Framed::new(wire, Limits::default()).unwrap();
        framed.send(1, &[0u8; 1000]).unwrap();
        // Server drops the connection without a response.
        assert_eq!(framed.recv().unwrap(), None);
        handle.shutdown();
    }
}
