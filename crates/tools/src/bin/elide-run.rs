//! `elide-run`: the untrusted application host (`./app` analog). Loads a
//! (sanitized) enclave, restores it through the authentication server, and
//! invokes an ecall — printing the timing line the paper's benchmarks
//! print ("Time elapsed in enclave initialization").
//!
//! ```text
//! elide-run SANITIZED.so --sig enclave.sig --platform platform.bin \
//!     --server 127.0.0.1:7788 --restore-index N \
//!     [--data enclave.secret.data] [--sealed sealed.bin] \
//!     [--ecall N] [--input HEX] [--out-cap BYTES] \
//!     [--retries N] [--retry-delay-ms MS]
//! ```
//!
//! `--retries` covers both the TCP connect and the restore itself with
//! exponential backoff, so `elide-run` can be started before (or racing)
//! `elide-server`.

use elide_core::protocol::{TcpTransport, Transport};
use elide_core::restore::{
    elide_restore_with_retry, install_elide_ocalls, ElideFiles, RetryPolicy,
};
use elide_core::transport::Limits;
use elide_core::ElideError;
use elide_tools::{parse_hex, read_file, run_tool, to_hex, write_file, Args, PlatformFile};
use sgx_sim::sigstruct::SigStruct;
use std::path::Path;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Instant;

fn main() -> ExitCode {
    run_tool(real_main())
}

/// Connects on first use, so a sealed relaunch never needs the server to
/// be reachable (the enclave only falls back to the transport when the
/// sealed blob is missing or fails to unseal).
struct LazyTcp {
    addr: String,
    policy: RetryPolicy,
    connected: Option<TcpTransport>,
}

impl Transport for LazyTcp {
    fn request(&mut self, req: u8, payload: &[u8]) -> Result<Vec<u8>, ElideError> {
        if self.connected.is_none() {
            self.connected = Some(TcpTransport::connect_with_retry(
                &self.addr,
                Limits::default(),
                &self.policy,
            )?);
        }
        self.connected.as_mut().expect("just connected").request(req, payload)
    }
}

fn real_main() -> Result<(), String> {
    let mut args = Args::capture();
    let sig_path = args.opt("--sig").ok_or("missing --sig")?;
    let platform_path = args.opt("--platform").unwrap_or_else(|| "platform.bin".to_string());
    let server = args.opt("--server").unwrap_or_else(|| "127.0.0.1:7788".to_string());
    let restore_index = args
        .opt("--restore-index")
        .ok_or("missing --restore-index")?
        .parse::<u64>()
        .map_err(|e| format!("bad --restore-index: {e}"))?;
    let data_path = args.opt("--data");
    let sealed_path = args.opt("--sealed");
    let ecall = args.opt("--ecall").map(|e| e.parse::<u64>());
    let input = match args.opt("--input") {
        Some(hex) => parse_hex(&hex)?,
        None => Vec::new(),
    };
    let out_cap = args
        .opt("--out-cap")
        .map(|c| c.parse::<usize>())
        .transpose()
        .map_err(|e| format!("bad --out-cap: {e}"))?
        .unwrap_or(64);
    let retries = args
        .opt("--retries")
        .map(|r| r.parse::<u32>())
        .transpose()
        .map_err(|e| format!("bad --retries: {e}"))?
        .unwrap_or(0);
    let retry_delay_ms = args
        .opt("--retry-delay-ms")
        .map(|r| r.parse::<u64>())
        .transpose()
        .map_err(|e| format!("bad --retry-delay-ms: {e}"))?
        .unwrap_or(50);
    let policy = RetryPolicy {
        retries,
        initial_delay: std::time::Duration::from_millis(retry_delay_ms),
        ..RetryPolicy::default()
    };
    let inputs = args.finish()?;
    let [image_path] = inputs.as_slice() else {
        return Err("expected exactly one enclave image".into());
    };

    let image = read_file(image_path)?;
    let sigstruct = SigStruct::from_bytes(&read_file(&sig_path)?)
        .ok_or_else(|| format!("{sig_path}: not a SIGSTRUCT file"))?;
    let platform = PlatformFile::load_or_create(&platform_path)?;

    // --- enclave initialization (timed, like the paper's benchmarks) ---
    let t0 = Instant::now();
    let loaded = elide_enclave::loader::load_enclave(&platform.cpu, &image, &sigstruct)
        .map_err(|e| format!("load failed: {e}"))?;
    let mut rt = elide_enclave::EnclaveRuntime::new(loaded);

    let sealed_store = Arc::new(Mutex::new(match &sealed_path {
        Some(p) if Path::new(p).exists() => Some(read_file(p)?),
        _ => None,
    }));
    let files = ElideFiles {
        data_file: match &data_path {
            Some(p) => Some(read_file(p)?),
            None => None,
        },
        sealed: Arc::clone(&sealed_store),
    };
    let transport = Arc::new(Mutex::new(LazyTcp { addr: server, policy, connected: None }));
    install_elide_ocalls(&mut rt, transport, Arc::new(platform.qe), files);

    let stats = elide_restore_with_retry(&mut rt, restore_index, &policy)
        .map_err(|e| format!("restore: {e}"))?;
    println!(
        "Time elapsed in enclave initialization: {:.3} ms ({} guest instructions)",
        t0.elapsed().as_secs_f64() * 1e3,
        stats.instructions
    );

    if let Some(p) = &sealed_path {
        if let Some(blob) = sealed_store.lock().expect("sealed store").clone() {
            write_file(p, &blob)?;
        }
    }

    // --- application ecall ---
    if let Some(index) = ecall {
        let index = index.map_err(|e| format!("bad --ecall: {e}"))?;
        let r = rt.ecall(index, &input, out_cap).map_err(|e| format!("ecall: {e}"))?;
        println!("status = {}", r.status);
        if out_cap > 0 {
            println!("output = {}", to_hex(&r.output));
        }
    }
    Ok(())
}
