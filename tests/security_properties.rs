//! Security-property tests: what each class of attacker can and cannot
//! learn, following the protection model of §2.2 and the discussion of §7.

use sgxelide::apps::harness::{launch_plain, launch_protected};
use sgxelide::core::attack::{
    analyze_image, attribute_page_trace, disassemble_function, find_signature,
};
use sgxelide::core::sanitizer::DataPlacement;
use sgxelide::core::whitelist::Whitelist;
use sgxelide::sgx::enclave::AccessKind;

/// Static attacker with the enclave *file*: before SgxElide they recover
/// every algorithm; after, only whitelisted runtime code.
#[test]
fn code_confidentiality_against_disassembly() {
    let wl = Whitelist::from_dummy_enclave().unwrap();
    let allowed: Vec<&str> = wl.iter().collect();
    for app in sgxelide::apps::all_apps() {
        let original = app.build_elide_image().unwrap();
        let report = analyze_image(&original).unwrap();
        assert!(report.leaks_beyond(&allowed), "{}: original leaks user code", app.name);
        assert!(report.decodable_fraction > 0.5);

        let p = launch_protected(&app, DataPlacement::Remote, 0x5EC).unwrap();
        let report = analyze_image(&p.package.image).unwrap();
        assert!(
            !report.leaks_beyond(&allowed),
            "{}: sanitized image still leaks user functions: {:?}",
            app.name,
            report.readable_names
        );
    }
}

/// Signature scanning: code-embedded secrets disappear; `.rodata` tables
/// do **not** — SgxElide redacts *functions* ("the Sanitizer ... redacts
/// all user defined functions"), exactly like the paper, so static data
/// such as the (public) AES S-box remains visible. Secrets must live in
/// code, as the Crackme and Biniax benchmarks do.
#[test]
fn signature_scanning_defeated_for_code_not_rodata() {
    // Code-embedded secret (Biniax asset seed): present before, gone after.
    let app = sgxelide::apps::biniax::app();
    let original = app.build_elide_image().unwrap();
    let seed_lo = (sgxelide::apps::biniax::ASSET_SEED as u32).to_le_bytes();
    assert!(find_signature(&original, &seed_lo));
    let p = launch_protected(&app, DataPlacement::Remote, 0x5B0).unwrap();
    assert!(!find_signature(&p.package.image, &seed_lo));

    // Static table (AES S-box, public data): visible in both — the
    // documented boundary of function-granular sanitization.
    let app = sgxelide::apps::aes_app::app();
    let original = app.build_elide_image().unwrap();
    let sbox_prefix = &sgxelide::crypto::aes::SBOX[..32];
    assert!(find_signature(&original, sbox_prefix));
    let p = launch_protected(&app, DataPlacement::Remote, 0x5B1).unwrap();
    assert!(
        find_signature(&p.package.image, sbox_prefix),
        "rodata is not redacted (function-granular sanitizer)"
    );
}

/// Runtime attacker without enclave privileges: reading enclave linear
/// addresses yields the abort page; the DRAM image is MEE ciphertext —
/// even *after* restoration put the secrets back.
#[test]
fn restored_secrets_stay_inside_the_epc() {
    let app = sgxelide::apps::crackme::app();
    let mut p = launch_protected(&app, DataPlacement::Remote, 0xD5A).unwrap();
    p.restore().unwrap();

    let enclave = p.app.runtime.enclave();
    let base = enclave.base();
    // Unprivileged read: abort page semantics.
    assert_eq!(enclave.abort_page_read(base, 64), vec![0xFF; 64]);
    // Physical attacker: every resident page is ciphertext; the restored
    // code (which contains the password-derived immediates) is not visible.
    let needle = sgxelide::apps::crackme::signature();
    for (_, ciphertext) in enclave.dram_image() {
        assert!(!find_signature(&ciphertext, &needle), "secret visible in DRAM image");
    }
    // Inside the enclave the restored code *is* present (sanity check that
    // the above is not vacuous).
    let report = analyze_image(&p.package.image).unwrap();
    assert!(report.readable_functions < report.total_functions);
}

/// §7: controlled-channel attackers learn page-fault sequences; against a
/// sanitized binary they cannot attribute pages to *secret* functions
/// because the symbol-to-content mapping is destroyed. We demonstrate the
/// observable: identical page traces, but attribution against the
/// sanitized image maps pages only to whitelisted/zeroed names with no
/// recoverable bodies.
#[test]
fn controlled_channel_attribution_is_blunted() {
    let app = sgxelide::apps::crackme::app();

    // Plain build: the attacker traces pages and attributes them.
    let mut plain = launch_plain(&app, 0xCC1).unwrap();
    plain.runtime.enable_page_trace();
    plain
        .runtime
        .ecall(plain.indices["check_password"], sgxelide::apps::crackme::PASSWORD, 0)
        .unwrap();
    let trace = plain.runtime.take_page_trace();
    assert!(!trace.is_empty());
    let plain_image = app.build_plain_image().unwrap();
    // The trace covers the page holding the secret function...
    let elf = sgxelide::elf::ElfFile::parse(plain_image.clone()).unwrap();
    let secret_page = elf.symbol_by_name("check_password").unwrap().value & !0xFFF;
    assert!(trace.contains(&secret_page), "trace misses the secret function's page");
    // ...and every traced page attributes to a known function.
    let names = attribute_page_trace(&plain_image, &trace).unwrap();
    assert!(names.iter().all(|n| n != "?"), "unattributable pages: {names:?}");
    // And crucially, the attacker can read that function's code:
    let listing = disassemble_function(&plain_image, Some("check_password")).unwrap();
    assert!(listing.contains("movi"));

    // Protected build: same observable exists, but the on-disk bytes for
    // the secret function are zero, so page knowledge does not yield code.
    let p = launch_protected(&app, DataPlacement::Remote, 0xCC2).unwrap();
    let listing = disassemble_function(&p.package.image, Some("check_password")).unwrap();
    assert!(listing.lines().all(|l| l.contains("(bad)")));
}

/// The sanitized text pages are writable (the PF_W patch) — and the plain
/// build's are not. This is the §7 security trade-off made measurable.
#[test]
fn text_page_writability_tradeoff() {
    let app = sgxelide::apps::crackme::app();
    let plain = launch_plain(&app, 0x11F).unwrap();
    let image = app.build_plain_image().unwrap();
    let elf = sgxelide::elf::ElfFile::parse(image).unwrap();
    let text_addr = elf.section_by_name(".text").unwrap().sh_addr;
    let perms = plain.runtime.page_perms(text_addr).unwrap();
    assert!(!perms.writable(), "plain text pages must be r-x");

    let p = launch_protected(&app, DataPlacement::Remote, 0x11E).unwrap();
    let elf = sgxelide::elf::ElfFile::parse(p.package.image.clone()).unwrap();
    let text_addr = elf.section_by_name(".text").unwrap().sh_addr;
    let perms = p.app.runtime.page_perms(text_addr).unwrap();
    assert!(perms.writable() && perms.executable(), "protected text pages are rwx");
}

/// Secrets are never exposed to the untrusted host during restore: the
/// marshal area must not contain the plaintext text section afterwards
/// (remote mode sends it channel-encrypted; decryption happens in-enclave).
#[test]
fn untrusted_memory_never_sees_plaintext_secrets() {
    let app = sgxelide::apps::crackme::app();
    let mut p = launch_protected(&app, DataPlacement::Remote, 0xA0B).unwrap();
    p.restore().unwrap();
    let needle = sgxelide::apps::crackme::signature();
    // Scan the whole untrusted marshal area.
    let untrusted = p
        .app
        .runtime
        .untrusted()
        .read(sgxelide::enclave::runtime::UNTRUSTED_BASE, 1 << 20)
        .unwrap();
    assert!(
        !find_signature(&untrusted, &needle),
        "plaintext secret code leaked into untrusted memory"
    );
}

/// The enclave *can* read its own restored code (it is inside), confirming
/// the restoration actually wrote the right bytes (byte-exact equality
/// with the original text).
#[test]
fn restored_text_is_byte_identical_to_original() {
    let app = sgxelide::apps::sha1_app::app();
    let original_image = app.build_elide_image().unwrap();
    let elf = sgxelide::elf::ElfFile::parse(original_image).unwrap();
    let text = elf.section_by_name(".text").unwrap();
    let original_text = elf.section_data(text).unwrap().to_vec();

    let mut p = launch_protected(&app, DataPlacement::Remote, 0x1D).unwrap();
    p.restore().unwrap();
    let restored =
        p.app.runtime.enclave().read(text.sh_addr, original_text.len(), AccessKind::Read).unwrap();
    assert_eq!(restored, original_text);
}
