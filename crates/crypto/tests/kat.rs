//! Known-answer tests pinning the crypto kernels bit-for-bit.
//!
//! These vectors were committed *before* the throughput-oriented kernel
//! rewrite (T-table AES, table-driven GHASH, zero-allocation SHA, Montgomery
//! exponentiation) and must keep passing unchanged afterwards: they are the
//! proof that sealed blobs, MRENCLAVE values, SIGSTRUCT signatures and
//! channel messages produced by the old kernels remain valid under the new
//! ones. Sources: FIPS 197 (AES), NIST SP 800-38D GCM vector set, FIPS 180-4
//! (SHA), RFC 4231 (HMAC-SHA256), plus implementation-pinned outputs for the
//! deterministic RSA/DH/KDF paths.

use elide_crypto::aes::{ctr_xor, Aes};
use elide_crypto::dh::DhKeyPair;
use elide_crypto::gcm::AesGcm;
use elide_crypto::hmac::{hmac_sha256, hmac_sha256_verify};
use elide_crypto::kdf::derive_key;
use elide_crypto::rng::SeededRandom;
use elide_crypto::rsa::RsaKeyPair;
use elide_crypto::sha1::Sha1;
use elide_crypto::sha2::{Sha256, Sha512};

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
}

// ---------------------------------------------------------------- AES (FIPS 197)

#[test]
fn aes128_fips197_appendix_b() {
    let key: [u8; 16] = unhex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
    let aes = Aes::new_128(&key);
    let mut block: [u8; 16] = unhex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
    aes.encrypt_block(&mut block);
    assert_eq!(hex(&block), "3925841d02dc09fbdc118597196a0b32");
    aes.decrypt_block(&mut block);
    assert_eq!(hex(&block), "3243f6a8885a308d313198a2e0370734");
}

#[test]
fn aes128_fips197_appendix_c1() {
    let key: [u8; 16] = unhex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
    let aes = Aes::new_128(&key);
    let mut block: [u8; 16] = unhex("00112233445566778899aabbccddeeff").try_into().unwrap();
    aes.encrypt_block(&mut block);
    assert_eq!(hex(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
    aes.decrypt_block(&mut block);
    assert_eq!(hex(&block), "00112233445566778899aabbccddeeff");
}

#[test]
fn aes256_fips197_appendix_c3() {
    let key: [u8; 32] = unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
        .try_into()
        .unwrap();
    let aes = Aes::new_256(&key);
    let mut block: [u8; 16] = unhex("00112233445566778899aabbccddeeff").try_into().unwrap();
    aes.encrypt_block(&mut block);
    assert_eq!(hex(&block), "8ea2b7ca516745bfeafc49904b496089");
    aes.decrypt_block(&mut block);
    assert_eq!(hex(&block), "00112233445566778899aabbccddeeff");
}

#[test]
fn aes_ctr_keystream_pinned() {
    // CTR mode is GCM's bulk cipher; pin the keystream over two blocks.
    let aes = Aes::new_128(&unhex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap());
    let mut data = [0u8; 32];
    let ctr0: [u8; 16] = unhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfe00").try_into().unwrap();
    ctr_xor(&aes, &ctr0, &mut data);
    let mut redo = data;
    ctr_xor(&aes, &ctr0, &mut redo);
    assert_eq!(redo, [0u8; 32], "CTR must be an involution");
    assert_eq!(hex(&data), "4d08ef66db6c78047ad0639a1dd025f715f4450dd16d0c417848bb5a8dab239b");
}

// -------------------------------------------------- AES-GCM (NIST SP 800-38D)

#[test]
fn gcm_nist_case_1_empty_everything() {
    let gcm = AesGcm::new(&[0u8; 16]).unwrap();
    let (ct, tag) = gcm.seal(&[0u8; 12], &[], &[]);
    assert!(ct.is_empty());
    assert_eq!(hex(&tag), "58e2fccefa7e3061367f1d57a4e7455a");
}

#[test]
fn gcm_nist_case_2_single_zero_block() {
    let gcm = AesGcm::new(&[0u8; 16]).unwrap();
    let (ct, tag) = gcm.seal(&[0u8; 12], &[], &[0u8; 16]);
    assert_eq!(hex(&ct), "0388dace60b6a392f328c2b971b2fe78");
    assert_eq!(hex(&tag), "ab6e47d42cec13bdf53a67b21257bddf");
}

#[test]
fn gcm_nist_case_3_four_blocks_empty_aad() {
    let key = unhex("feffe9928665731c6d6a8f9467308308");
    let iv: [u8; 12] = unhex("cafebabefacedbaddecaf888").try_into().unwrap();
    let pt = unhex(
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
         1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
    );
    let gcm = AesGcm::new(&key).unwrap();
    let (ct, tag) = gcm.seal(&iv, &[], &pt);
    assert_eq!(
        hex(&ct),
        "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
         21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
    );
    assert_eq!(hex(&tag), "4d5c2af327cd64a62cf35abd2ba6fab4");
    assert_eq!(gcm.open(&iv, &[], &ct, &tag).unwrap(), pt);
}

#[test]
fn gcm_nist_case_4_with_aad() {
    let key = unhex("feffe9928665731c6d6a8f9467308308");
    let iv: [u8; 12] = unhex("cafebabefacedbaddecaf888").try_into().unwrap();
    let pt = unhex(
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
         1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
    );
    let aad = unhex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
    let gcm = AesGcm::new(&key).unwrap();
    let (ct, tag) = gcm.seal(&iv, &aad, &pt);
    assert_eq!(
        hex(&ct),
        "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
         21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
    );
    assert_eq!(hex(&tag), "5bc94fbc3221a5db94fae95ae7121a47");
}

#[test]
fn gcm_nist_case_13_14_aes256() {
    let gcm = AesGcm::new(&[0u8; 32]).unwrap();
    let (ct, tag) = gcm.seal(&[0u8; 12], &[], &[]);
    assert!(ct.is_empty());
    assert_eq!(hex(&tag), "530f8afbc74536b9a963b4f1c4cb738b");

    let (ct, tag) = gcm.seal(&[0u8; 12], &[], &[0u8; 16]);
    assert_eq!(hex(&ct), "cea7403d4d606b6e074ec5d3baf39d18");
    assert_eq!(hex(&tag), "d0d1c8a799996bf0265b98b5d48ab919");
}

#[test]
fn gcm_nist_case_16_aes256_with_aad() {
    let key = unhex("feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308");
    let iv: [u8; 12] = unhex("cafebabefacedbaddecaf888").try_into().unwrap();
    let pt = unhex(
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
         1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
    );
    let aad = unhex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
    let gcm = AesGcm::new(&key).unwrap();
    let (ct, tag) = gcm.seal(&iv, &aad, &pt);
    assert_eq!(
        hex(&ct),
        "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa\
         8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662"
    );
    assert_eq!(hex(&tag), "76fc6ece0f4e1768cddf8853bb2d551b");
    assert_eq!(gcm.open(&iv, &aad, &ct, &tag).unwrap(), pt);
}

#[test]
fn gcm_tag_truncation_rejected() {
    // A tag whose trailing bytes were lost (zero-padded back to 16) must not
    // authenticate: truncation is not a valid downgrade.
    let gcm = AesGcm::new(&[9u8; 16]).unwrap();
    let iv = [1u8; 12];
    let (ct, tag) = gcm.seal(&iv, b"aad", b"elided text section bytes");
    for keep in [0usize, 4, 8, 12, 15] {
        let mut truncated = [0u8; 16];
        truncated[..keep].copy_from_slice(&tag[..keep]);
        assert!(gcm.open(&iv, b"aad", &ct, &truncated).is_err(), "kept {keep} tag bytes");
    }
    assert_eq!(gcm.open(&iv, b"aad", &ct, &tag).unwrap(), b"elided text section bytes");
}

#[test]
fn gcm_seal_pinned_for_channel_format() {
    // Pinned output of the exact call the provisioning channel makes; a
    // kernel swap that changed this would break recorded sealed blobs.
    let gcm = AesGcm::new(&[0x42; 16]).unwrap();
    let (ct, tag) = gcm.seal(&[7u8; 12], b"metadata", b"secret code bytes");
    assert_eq!(hex(&ct), "4a366ab012ba0fb349fb2eb083e5fd5de4");
    assert_eq!(hex(&tag), "de8734e057e86790357bdc9bba2e4034");
}

// ------------------------------------------------------- SHA-1 (FIPS 180-4)

#[test]
fn sha1_fips180_vectors() {
    assert_eq!(hex(&Sha1::digest(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
    assert_eq!(hex(&Sha1::digest(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    assert_eq!(
        hex(&Sha1::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    );
}

#[test]
fn sha1_million_a() {
    assert_eq!(
        hex(&Sha1::digest(&vec![b'a'; 1_000_000])),
        "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    );
}

// ----------------------------------------------------- SHA-256 (FIPS 180-4)

#[test]
fn sha256_fips180_vectors() {
    assert_eq!(
        hex(&Sha256::digest(b"abc")),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    );
    assert_eq!(
        hex(&Sha256::digest(b"")),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    );
    assert_eq!(
        hex(&Sha256::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    );
}

#[test]
fn sha256_million_a() {
    assert_eq!(
        hex(&Sha256::digest(&vec![b'a'; 1_000_000])),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    );
}

#[test]
fn sha224_sha384_sha512_abc() {
    let mut h = Sha256::new_224();
    h.update(b"abc");
    assert_eq!(hex(&h.finalize_vec()), "23097d223405d8228642a477bda255b32aadbce4bda0b3f7e36c9da7");

    let mut h = Sha512::new_384();
    h.update(b"abc");
    assert_eq!(
        hex(&h.finalize_vec()),
        "cb00753f45a35e8bb5a03d699ac65007272c32ab0eded1631a8b605a43ff5bed\
         8086072ba1e7cc2358baeca134c825a7"
    );

    assert_eq!(
        hex(&Sha512::digest(b"abc")),
        "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
         2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
    );
}

#[test]
fn sha256_uneven_incremental_boundaries() {
    // Exercise every buffer fill level around the 64-byte block boundary —
    // the case the zero-allocation streaming rewrite must not regress.
    let data: Vec<u8> = (0..1024u32).map(|x| (x % 251) as u8).collect();
    let oneshot = Sha256::digest(&data);
    for chunk in [1usize, 3, 63, 64, 65, 127, 128, 200] {
        let mut h = Sha256::new();
        for c in data.chunks(chunk) {
            h.update(c);
        }
        assert_eq!(h.finalize(), oneshot, "chunk size {chunk}");
    }
}

#[test]
fn sha256_eextend_shaped_stream_pinned() {
    // The measurement chain issues thousands of (8 + 8 + 256)-byte updates;
    // pin the digest of a synthetic EEXTEND stream so MRENCLAVE values are
    // provably stable across the kernel swap.
    let mut h = Sha256::new();
    for i in 0u64..64 {
        h.update(b"EEXTEND\0");
        h.update(&(i * 256).to_le_bytes());
        h.update(&[i as u8; 256]);
    }
    assert_eq!(
        hex(&h.finalize()),
        "4052c37fa52558295da239c31412c694944cdaa00e30e72f6320e0063085da39"
    );
}

// ------------------------------------------------- HMAC-SHA256 (RFC 4231)

#[test]
fn hmac_rfc4231_case_1() {
    let tag = hmac_sha256(&[0x0b; 20], b"Hi There");
    assert_eq!(hex(&tag), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

#[test]
fn hmac_rfc4231_case_2() {
    let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
    assert_eq!(hex(&tag), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

#[test]
fn hmac_rfc4231_case_3() {
    let tag = hmac_sha256(&[0xaa; 20], &[0xdd; 50]);
    assert_eq!(hex(&tag), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

#[test]
fn hmac_rfc4231_case_4() {
    let key: Vec<u8> = (1u8..=25).collect();
    let tag = hmac_sha256(&key, &[0xcd; 50]);
    assert_eq!(hex(&tag), "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

#[test]
fn hmac_rfc4231_case_6_long_key() {
    let tag = hmac_sha256(&[0xaa; 131], b"Test Using Larger Than Block-Size Key - Hash Key First");
    assert_eq!(hex(&tag), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

#[test]
fn hmac_rfc4231_case_7_long_key_long_data() {
    let tag = hmac_sha256(
        &[0xaa; 131],
        b"This is a test using a larger than block-size key and a larger than \
          block-size data. The key needs to be hashed before being used by the \
          HMAC algorithm."
            .as_slice(),
    );
    assert_eq!(hex(&tag), "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
    assert!(hmac_sha256_verify(&[0xaa; 131], b"x", &hmac_sha256(&[0xaa; 131], b"x")));
}

// ------------------------------------- implementation-pinned RSA / DH / KDF

#[test]
fn rsa_signature_pinned() {
    // Key generation and PKCS#1 v1.5 signing are fully deterministic given
    // the seeded RNG; pinning the signature pins SIGSTRUCT bytes.
    let mut rng = SeededRandom::new(0xE11DE);
    let kp = RsaKeyPair::generate(512, &mut rng);
    let sig = kp.sign(b"SIGSTRUCT pinned payload").unwrap();
    assert_eq!(
        hex(&sig),
        "d65dfb2910b3815bf8f4dbc958d066b57150e1c7924cde0b96f8dbb03b2dd5c3\
         4f39f148b2c4d15d79564f73bd0486f9b1b575007e2b3d5bb9b8988487d8bcf5"
    );
    assert_eq!(
        hex(&kp.public_key().fingerprint()),
        "7b8f0568c11f570a9835a8b45884aed9558f373d32dac6c56b5cd52ca7f5df82"
    );
    kp.public_key().verify(b"SIGSTRUCT pinned payload", &sig).unwrap();
}

#[test]
fn dh_handshake_pinned() {
    // Pinned public value and derived channel key for fixed seeds: the
    // Montgomery modpow must agree with the schoolbook one bit-for-bit.
    let mut rng = SeededRandom::new(10);
    let alice = DhKeyPair::generate(&mut rng);
    let bob = DhKeyPair::generate(&mut rng);
    assert_eq!(
        hex(&alice.public_bytes()),
        "0a1181d6043d71087c014092182e1d14bdb392382358ba51de8a5d44aa474a7e\
         8d95f00ac07b388b90814da44f6a22c1d56248270a74ef22473b28a37287c6bb\
         35a9e23412a3e343c75202ba2b97a9e3cda346e4fc765ba8e4ac1cb630f182c7"
    );
    let k1 = alice.derive_session_key(&bob.public_bytes()).unwrap();
    let k2 = bob.derive_session_key(&alice.public_bytes()).unwrap();
    assert_eq!(k1, k2);
    assert_eq!(hex(&k1), "19498b7c07b1eb62b696222141169419");
}

#[test]
fn kdf_output_pinned() {
    // EGETKEY-style derivation: seal keys must not move across the swap.
    let k = derive_key(b"fuse-secret", "seal", b"mrenclave-bytes", 48);
    assert_eq!(
        hex(&k),
        "7a84327580eb63da4e0ad6bf9b89c69233e4c5dbf225e8f158175ab82b830f17\
         e99062290100c6e66d58939c4bb4ba9e"
    );
}
