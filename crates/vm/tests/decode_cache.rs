//! Self-modification coherence of the decode cache.
//!
//! The cache trades per-instruction fetches for page-granular decoded
//! arrays, so every way code bytes can change under a running (or resumed)
//! VM needs a test proving the new bytes are served: host rewrites between
//! runs (restore), guest stores into the page being executed (JIT-style
//! patching), and the sanitized-page life cycle where all-zero bytes must
//! fault exactly like an uncached fetch would.

use elide_vm::interp::{Exit, Vm};
use elide_vm::isa::{Instr, Opcode};
use elide_vm::mem::{FlatMemory, VmFault};

fn enc(op: Opcode, a: u8, b: u8, c: u8, imm: i32) -> [u8; 8] {
    Instr::new(op, a, b, c, imm).encode()
}

#[test]
fn host_rewrite_between_runs_is_served() {
    let mut mem = FlatMemory::new(0, 8192);
    mem.write_at(0, &enc(Opcode::Movi, 0, 0, 0, 1));
    mem.write_at(8, &enc(Opcode::Halt, 0, 0, 0, 0));
    let mut vm = Vm::new(0);
    vm.set_sp(8192);
    assert_eq!(vm.run(&mut mem, 100).unwrap(), Exit::Halt(1));

    // The host rewrites the code; the same VM (same warm cache) must see
    // the new immediate on the next run — this is the `elide_restore`
    // shape: bytes change while no guest instruction is in flight.
    mem.write_at(0, &enc(Opcode::Movi, 0, 0, 0, 2));
    vm.pc = 0;
    assert_eq!(vm.run(&mut mem, 100).unwrap(), Exit::Halt(2));
}

#[test]
fn guest_store_into_executing_page_is_served() {
    // The guest assembles `movi r0, 77` in a register, stores it over a
    // later slot of the *page it is executing*, and falls through into it.
    // A stale cache would serve the original `movi r0, 1`.
    let patch = u64::from_le_bytes(enc(Opcode::Movi, 0, 0, 0, 77));
    let lo = patch as u32 as i32;
    let hi = (patch >> 32) as u32 as i32;
    let mut mem = FlatMemory::new(0, 8192);
    mem.write_at(0, &enc(Opcode::Movi, 1, 0, 0, lo));
    mem.write_at(8, &enc(Opcode::Movhi, 1, 0, 0, hi));
    mem.write_at(16, &enc(Opcode::Movi, 2, 0, 0, 40)); // target slot address
    mem.write_at(24, &enc(Opcode::St64, 1, 2, 0, 0));
    mem.write_at(32, &enc(Opcode::Movi, 3, 0, 0, 0)); // filler
    mem.write_at(40, &enc(Opcode::Movi, 0, 0, 0, 1)); // will be patched
    mem.write_at(48, &enc(Opcode::Halt, 0, 0, 0, 0));
    let mut vm = Vm::new(0);
    vm.set_sp(8192);
    assert_eq!(vm.run(&mut mem, 100).unwrap(), Exit::Halt(77));
}

#[test]
fn zeroed_page_faults_then_restore_resumes_same_vm() {
    // The sanitized-code life cycle: all-zero bytes must fault as
    // IllegalInstruction at the exact address (cached or not), and after
    // the host writes real code the *same* VM must execute it.
    let mut mem = FlatMemory::new(0, 4096);
    let mut vm = Vm::new(0);
    vm.set_sp(4096);
    assert_eq!(vm.run(&mut mem, 10), Err(VmFault::IllegalInstruction { addr: 0 }));
    // Fault again to prove the cached zero page keeps faulting.
    assert_eq!(vm.run(&mut mem, 10), Err(VmFault::IllegalInstruction { addr: 0 }));

    mem.write_at(0, &enc(Opcode::Movi, 0, 0, 0, 5));
    mem.write_at(8, &enc(Opcode::Halt, 0, 0, 0, 0));
    assert_eq!(vm.run(&mut mem, 10).unwrap(), Exit::Halt(5));
}

#[test]
fn misaligned_pc_executes_via_slow_path() {
    // Instructions at non-8-aligned addresses straddle decode-cache slots
    // and must fall back to per-instruction fetches.
    let mut mem = FlatMemory::new(0, 8192);
    mem.write_at(0, &enc(Opcode::Movi, 1, 0, 0, 12));
    mem.write_at(8, &enc(Opcode::Jmpr, 0, 1, 0, 0));
    mem.write_at(12, &enc(Opcode::Movi, 0, 0, 0, 9));
    mem.write_at(20, &enc(Opcode::Halt, 0, 0, 0, 0));
    let mut vm = Vm::new(0);
    vm.set_sp(8192);
    assert_eq!(vm.run(&mut mem, 100).unwrap(), Exit::Halt(9));
}

#[test]
fn cross_page_execution_and_patching() {
    // Code spans two pages; a store from page 0 patches page 1 before
    // control transfers there.
    let patch = u64::from_le_bytes(enc(Opcode::Movi, 0, 0, 0, 33));
    let lo = patch as u32 as i32;
    let hi = (patch >> 32) as u32 as i32;
    let mut mem = FlatMemory::new(0, 16384);
    mem.write_at(0, &enc(Opcode::Movi, 1, 0, 0, lo));
    mem.write_at(8, &enc(Opcode::Movhi, 1, 0, 0, hi));
    mem.write_at(16, &enc(Opcode::Movi, 2, 0, 0, 4096));
    mem.write_at(24, &enc(Opcode::St64, 1, 2, 0, 0));
    mem.write_at(32, &enc(Opcode::Jmpr, 0, 2, 0, 0));
    // Page 1 pre-patch: movi r0, 1 (stale result) then halt.
    mem.write_at(4096, &enc(Opcode::Movi, 0, 0, 0, 1));
    mem.write_at(4104, &enc(Opcode::Halt, 0, 0, 0, 0));
    let mut vm = Vm::new(0);
    vm.set_sp(16384);
    // Warm the cache for page 1 first so the patch must invalidate it.
    vm.pc = 4096;
    assert_eq!(vm.run(&mut mem, 100).unwrap(), Exit::Halt(1));
    vm.pc = 0;
    assert_eq!(vm.run(&mut mem, 100).unwrap(), Exit::Halt(33));
}
