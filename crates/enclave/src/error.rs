//! Unified error type for enclave build/load/run operations.

use elide_vm::asm::AsmError;
use elide_vm::link::LinkError;
use elide_vm::mem::VmFault;
use sgx_sim::SgxError;
use std::fmt;

/// Errors from building, loading or running an enclave.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EnclaveError {
    /// Assembly failure while building an image.
    Asm(AsmError),
    /// Link failure while building an image.
    Link(LinkError),
    /// ELF parse/patch failure.
    Elf(elide_elf::ElfError),
    /// SGX instruction failure (load or init time).
    Sgx(SgxError),
    /// Guest fault at run time (AEX).
    Fault(VmFault),
    /// An ocall arrived with no registered handler.
    UnknownOcall {
        /// The ocall index.
        index: i32,
    },
    /// A required symbol is missing from the image.
    MissingSymbol(String),
    /// Host-side input exceeded the untrusted marshal area.
    MarshalOverflow {
        /// Bytes requested.
        requested: usize,
        /// Bytes available.
        available: usize,
    },
}

impl fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnclaveError::Asm(e) => write!(f, "assembly error: {e}"),
            EnclaveError::Link(e) => write!(f, "link error: {e}"),
            EnclaveError::Elf(e) => write!(f, "elf error: {e}"),
            EnclaveError::Sgx(e) => write!(f, "sgx error: {e}"),
            EnclaveError::Fault(e) => write!(f, "enclave fault: {e}"),
            EnclaveError::UnknownOcall { index } => write!(f, "no handler for ocall {index}"),
            EnclaveError::MissingSymbol(s) => write!(f, "missing symbol {s}"),
            EnclaveError::MarshalOverflow { requested, available } => {
                write!(f, "marshal area overflow: need {requested}, have {available}")
            }
        }
    }
}

impl std::error::Error for EnclaveError {}

impl From<AsmError> for EnclaveError {
    fn from(e: AsmError) -> Self {
        EnclaveError::Asm(e)
    }
}

impl From<LinkError> for EnclaveError {
    fn from(e: LinkError) -> Self {
        EnclaveError::Link(e)
    }
}

impl From<elide_elf::ElfError> for EnclaveError {
    fn from(e: elide_elf::ElfError) -> Self {
        EnclaveError::Elf(e)
    }
}

impl From<SgxError> for EnclaveError {
    fn from(e: SgxError) -> Self {
        EnclaveError::Sgx(e)
    }
}

impl From<VmFault> for EnclaveError {
    fn from(e: VmFault) -> Self {
        EnclaveError::Fault(e)
    }
}
