//! Raw interpreter throughput (instructions per second) on the
//! instruction-bound paper workloads, plain build versus restored SgxElide
//! build. Unlike `overhead`, launch and restore are *excluded* from the
//! timed region: this isolates the execution engine itself, and is the
//! number the page-granular decode cache is meant to move.
//!
//! Emits `BENCH_exec_throughput.json` at the workspace root for CI
//! artifact upload. `ELIDE_BENCH_REPS` overrides the per-app repetition
//! count (CI smoke runs use a tiny value).
//!
//! Plain-main harness (`cargo bench --bench exec_throughput`).

use elide_apps::harness::{launch_plain, launch_protected};
use elide_apps::run_workload;
use elide_bench::{write_bench_json, BenchRecord};
use elide_core::sanitizer::DataPlacement;
use std::time::Instant;

fn main() {
    let reps: usize = std::env::var("ELIDE_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(30);

    // The three crypto kernels: tight arithmetic loops over enclave data,
    // where fetch/decode dominates an interpreter's runtime.
    let apps = {
        use elide_apps::*;
        vec![aes_app::app(), des_app::app(), sha1_app::app()]
    };

    let mut records = Vec::new();
    println!("exec_throughput (reps={reps})");
    println!("{:<14} {:>8} {:>14} {:>10} {:>10}", "app", "build", "instructions", "ms", "mips");

    for app in &apps {
        // Plain build: launch once (untimed), then time the workload loop.
        let mut p = launch_plain(app, 42).expect("launch");
        run_workload(app.name, &mut p.runtime, &p.indices); // warmup
        let base = p.runtime.retired_total();
        let t0 = Instant::now();
        for _ in 0..reps {
            run_workload(app.name, &mut p.runtime, &p.indices);
        }
        let seconds = t0.elapsed().as_secs_f64();
        let instructions = p.runtime.retired_total() - base;
        let rec = BenchRecord { name: app.name.to_string(), build: "plain", instructions, seconds };
        println!(
            "{:<14} {:>8} {:>14} {:>10.2} {:>10.2}",
            rec.name,
            rec.build,
            rec.instructions,
            rec.seconds * 1e3,
            rec.mips()
        );
        records.push(rec);

        // SgxElide build: launch + restore untimed, same timed region.
        let mut p = launch_protected(app, DataPlacement::Remote, 42).expect("launch");
        p.restore().expect("restore");
        run_workload(app.name, &mut p.app.runtime, &p.indices); // warmup
        let base = p.app.runtime.retired_total();
        let t0 = Instant::now();
        for _ in 0..reps {
            run_workload(app.name, &mut p.app.runtime, &p.indices);
        }
        let seconds = t0.elapsed().as_secs_f64();
        let instructions = p.app.runtime.retired_total() - base;
        let rec = BenchRecord { name: app.name.to_string(), build: "elide", instructions, seconds };
        println!(
            "{:<14} {:>8} {:>14} {:>10.2} {:>10.2}",
            rec.name,
            rec.build,
            rec.instructions,
            rec.seconds * 1e3,
            rec.mips()
        );
        records.push(rec);
    }

    let path = write_bench_json("exec_throughput", &records).expect("write json");
    println!("\nwrote {}", path.display());
}
