//! Concurrency: one authentication server provisioning several enclaves at
//! once over TCP, each connection with its own attested session.
//!
//! The acceptance bar for the layered service: a single [`AuthServer`]
//! backed by an MRENCLAVE-keyed [`SecretStore`] must concurrently serve
//! two *different* sanitized enclaves to eight parallel clients each, and
//! every client must end up with a byte-identical copy of its original
//! `.text` section.

use sgxelide::core::api::{protect, Mode, Platform, ProtectedPackage};
use sgxelide::core::client::ProvisionClient;
use sgxelide::core::elide_asm::ELIDE_ASM;
use sgxelide::core::error::ElideError;
use sgxelide::core::meta::SecretMeta;
use sgxelide::core::protocol::TcpTransport;
use sgxelide::core::restore::new_sealed_store;
use sgxelide::core::sanitizer::DataPlacement;
use sgxelide::core::server::{AuthServer, ExpectedIdentity};
use sgxelide::core::service::{serve, ServiceConfig};
use sgxelide::core::store::{SecretEntry, SecretStore};
use sgxelide::core::transport::tcp::TcpAcceptor;
use sgxelide::crypto::rng::SeededRandom;
use sgxelide::crypto::rsa::RsaKeyPair;
use sgxelide::elf::parse::ElfFile;
use sgxelide::enclave::image::EnclaveImageBuilder;
use sgxelide::sgx::enclave::AccessKind;
use sgxelide::sgx::quote::AttestationService;
use std::sync::{Arc, Mutex};

/// Builds an enclave exposing one secret ecall per `(name, ret)` pair.
/// Tenants with different numbers of functions have different image
/// layouts, hence different sanitized measurements.
fn build_image(fns: &[(&str, u64)]) -> Vec<u8> {
    let mut b = EnclaveImageBuilder::new();
    b.source(ELIDE_ASM);
    for (fn_name, ret) in fns {
        b.source(&format!(
            ".section text\n.global {fn_name}\n.func {fn_name}\n    movi r0, {ret}\n    ret\n.endfunc\n"
        ));
        b.ecall(fn_name);
    }
    b.ecall("elide_restore");
    b.build().unwrap()
}

struct Tenant {
    package: Arc<ProtectedPackage>,
    /// The pre-sanitization image (ground truth for `.text`).
    original: Vec<u8>,
    /// Ecall index of `elide_restore`.
    restore_index: u64,
    answer: u64,
}

fn protect_tenant(fns: &[(&str, u64)], seed: u64) -> Tenant {
    let original = build_image(fns);
    let mut rng = SeededRandom::new(seed);
    let vendor = RsaKeyPair::generate(512, &mut rng);
    let package = Arc::new(
        protect(&original, &vendor, &Mode::Whitelist, DataPlacement::Remote, &mut rng).unwrap(),
    );
    Tenant { package, original, restore_index: fns.len() as u64, answer: fns[0].1 }
}

#[test]
fn one_server_provisions_two_enclaves_to_parallel_clients() {
    const CLIENTS_PER_TENANT: usize = 8;

    let tenants = [
        Arc::new(protect_tenant(&[("alpha_secret", 77)], 0xC0C0)),
        Arc::new(protect_tenant(&[("beta_secret", 99), ("beta_helper", 3)], 0xC0C1)),
    ];
    assert_ne!(
        tenants[0].package.mrenclave, tenants[1].package.mrenclave,
        "distinct enclaves must have distinct measurements"
    );

    // All clients run on the same (trusted) platform model; the server
    // trusts that platform's quoting enclave.
    let mut rng = SeededRandom::new(0xC0C2);
    let mut ias = AttestationService::new();
    let platform = Arc::new(Platform::provision(&mut rng, &mut ias));

    // One store, one server: each tenant's entry is pinned to its
    // sanitized measurement.
    let mut store = SecretStore::new();
    for t in &tenants {
        store.insert(SecretEntry {
            name: format!("tenant-{}", t.answer),
            meta: t.package.meta.clone(),
            data: t.package.server_data.clone(),
            expected: ExpectedIdentity {
                mrenclave: Some(t.package.mrenclave),
                mrsigner: t.package.sigstruct.mrsigner().ok(),
            },
        });
    }
    let server = Arc::new(AuthServer::with_store(store, ias));

    let total = CLIENTS_PER_TENANT * tenants.len();
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr().unwrap().to_string();
    let handle = serve(
        acceptor,
        Arc::clone(&server),
        ServiceConfig::default().with_workers(4).with_max_connections(Some(total)),
    );

    let mut clients = Vec::new();
    for (t_idx, tenant) in tenants.iter().enumerate() {
        for i in 0..CLIENTS_PER_TENANT {
            let tenant = Arc::clone(tenant);
            let platform = Arc::clone(&platform);
            let addr = addr.clone();
            clients.push(std::thread::spawn(move || {
                let transport =
                    Arc::new(Mutex::new(TcpTransport::connect(&addr).expect("connect")));
                let seed = 0xC1 + (t_idx * CLIENTS_PER_TENANT + i) as u64;
                let mut app = tenant
                    .package
                    .launch(&platform, transport, new_sealed_store(), seed)
                    .expect("launch");
                app.restore(tenant.restore_index).expect("restore");
                assert_eq!(app.runtime.ecall(0, &[], 0).expect("ecall").status, tenant.answer);

                // Byte-identical `.text`: the restored enclave memory must
                // equal the original (pre-sanitization) image's section.
                let elf = ElfFile::parse(tenant.original.clone()).expect("parse original");
                let text = elf.section_by_name(".text").expect(".text section");
                let original_text = elf.section_data(text).expect("section data").to_vec();
                let restored = app
                    .runtime
                    .enclave()
                    .read(text.sh_addr, original_text.len(), AccessKind::Read)
                    .expect("read restored text");
                assert_eq!(restored, original_text, "restored .text must be byte-identical");
            }));
        }
    }
    for c in clients {
        c.join().expect("client thread");
    }
    handle.join();
    assert_eq!(
        server.handshakes(),
        total as u64,
        "every client performed its own attested handshake"
    );
}

/// Stress for the sharded event loop: many *protocol-level* clients (no
/// enclave launch each — one shared attesting enclave) hammer one
/// service, each running a full handshake, a data fetch, a ticket
/// request, and then a resumed relaunch on a second connection.
///
/// The client count defaults low so debug runs stay quick; CI raises it
/// to hundreds with `ELIDE_CONCURRENCY` on the release build (the
/// acceptance bar for the async provisioning plane).
#[test]
fn event_loop_serves_many_protocol_clients() {
    use sgxelide::core::store::SecretEntry as Entry;
    use sgxelide::sgx::epc::{PagePerms, PageType};
    use sgxelide::sgx::quote::QE_MEASUREMENT;
    use sgxelide::sgx::report::{ereport, TargetInfo};
    use sgxelide::sgx::sigstruct::SigStruct;

    let clients: usize = std::env::var("ELIDE_CONCURRENCY")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) { 8 } else { 64 });
    let payload = b"bulk secret".to_vec();

    // One platform, one initialized enclave every client attests from.
    let mut rng = SeededRandom::new(0xD0D0);
    let mut ias = AttestationService::new();
    let platform = Arc::new(Platform::provision(&mut rng, &mut ias));
    let enclave = {
        let mut e = platform.cpu.ecreate(0x100000, 0x1000).unwrap();
        e.eadd(0x100000, &[3; 4096], PagePerms::RX, PageType::Reg).unwrap();
        for i in 0..16 {
            e.eextend(0x100000 + i * 256).unwrap();
        }
        let kp = RsaKeyPair::generate(512, &mut rng);
        let sig = SigStruct::sign(&kp, e.current_measurement().unwrap(), 1, 1).unwrap();
        e.einit(&sig).unwrap();
        Arc::new(e)
    };

    let mut store = SecretStore::new();
    store.insert(Entry {
        name: "bulk".into(),
        meta: SecretMeta {
            flags: 0,
            data_len: payload.len() as u64,
            text_len: payload.len() as u64,
            restore_offset: 0,
            key: [7; 16],
            iv: [8; 12],
            tag: [9; 16],
        },
        data: payload.clone(),
        expected: ExpectedIdentity { mrenclave: Some(enclave.mrenclave()), mrsigner: None },
    });
    let server = Arc::new(AuthServer::with_store(store, ias));

    let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr().unwrap().to_string();
    let handle = serve(
        acceptor,
        Arc::clone(&server),
        // Two connections per client (initial + resumed relaunch).
        ServiceConfig::default().with_workers(4).with_max_connections(Some(clients * 2)),
    );

    let threads: Vec<_> = (0..clients)
        .map(|_| {
            let platform = Arc::clone(&platform);
            let enclave = Arc::clone(&enclave);
            let addr = addr.clone();
            let payload = payload.clone();
            std::thread::spawn(move || {
                let mut quote_fn = |report_data: [u8; 64]| {
                    let report =
                        ereport(&enclave, &TargetInfo { mrenclave: QE_MEASUREMENT }, report_data)
                            .map_err(|e| ElideError::Transport(format!("ereport: {e}")))?;
                    let quote = platform
                        .qe
                        .quote(&report)
                        .map_err(|e| ElideError::Transport(format!("quote: {e}")))?;
                    Ok(quote.to_bytes())
                };
                let mut client = ProvisionClient::new();
                let mut t1 = TcpTransport::connect(&addr).expect("connect");
                client.full_handshake(&mut t1, &mut quote_fn).expect("handshake");
                assert_eq!(client.fetch_data(&mut t1).expect("data"), payload);
                client.request_ticket(&mut t1).expect("ticket");
                drop(t1);

                // Relaunch on a fresh connection: one-round-trip resume.
                let mut t2 = TcpTransport::connect(&addr).expect("reconnect");
                let (secret, fast) = client.try_resume(&mut t2, &mut quote_fn).expect("resume");
                assert!(fast, "fresh ticket must resume");
                assert_eq!(secret.data, payload);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    handle.join();

    assert_eq!(server.handshakes(), clients as u64, "one full handshake per client");
    assert_eq!(server.resumptions(), clients as u64, "one resumed session per client");
}
