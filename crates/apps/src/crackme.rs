//! `Crackme` benchmark: a license check whose validation algorithm (and
//! embedded expected digest) is the secret — the classic DRM target the
//! paper motivates. Ported from "an easy linux crackme".
//!
//! The check: each input byte is XORed with `0x5A`, rotated left 3 within
//! the byte, and compared against an embedded table derived from the real
//! password. An attacker with the plain enclave file reads both the
//! transform and the table straight out of the disassembly; with SgxElide
//! they get zeroes.

use crate::harness::App;

/// The vendor's secret password (lives only on the build machine and, via
/// the transform table, inside the protected text section).
pub const PASSWORD: &[u8; 16] = b"SGXELIDE_CGO2018";

/// The byte transform the guest applies to candidate input.
pub fn transform(b: u8) -> u8 {
    (b ^ 0x5A).rotate_left(3)
}

/// Host reference check.
pub fn reference_check(input: &[u8]) -> bool {
    input.len() == PASSWORD.len()
        && input.iter().zip(PASSWORD.iter()).all(|(&i, &p)| transform(i) == transform(p))
}

/// Builds the guest program. The expected bytes are embedded as *immediate
/// operands* inside the function body (not in `.rodata`), so the secret is
/// part of the code the sanitizer redacts.
pub fn app() -> App {
    let mut body = String::new();
    for (i, &b) in PASSWORD.iter().enumerate() {
        let e = transform(b);
        body.push_str(&format!(
            "    ld8u r4, [r2+{i}]\n\
             \x20   xori r4, r4, 0x5A\n\
             \x20   shli r5, r4, 3\n\
             \x20   shrui r4, r4, 5\n\
             \x20   or   r4, r4, r5\n\
             \x20   andi r4, r4, 0xff\n\
             \x20   movi r5, {e}\n\
             \x20   bne  r4, r5, .bad\n"
        ));
    }
    let asm = format!(
        ".section text\n\
         .global check_password\n\
         .func check_password\n\
         \x20   ; r2 = input ptr, r3 = input len -> r0 = 1 if the password matches\n\
         \x20   movi r6, 16\n\
         \x20   bne  r3, r6, .bad\n\
         {body}\
         \x20   movi r0, 1\n\
         \x20   ret\n\
         .bad:\n\
         \x20   movi r0, 0\n\
         \x20   ret\n\
         .endfunc\n"
    );
    App { name: "Crackme", asm, ecalls: vec!["check_password"] }
}

/// The 8-byte instruction encoding of the first embedded comparison — the
/// signature an attacker would scan for.
pub fn signature() -> [u8; 8] {
    elide_vm::isa::Instr::new(elide_vm::isa::Opcode::Movi, 5, 0, 0, transform(PASSWORD[0]) as i32)
        .encode()
}

/// The benchmark's built-in workload: a batch of wrong candidates plus the
/// real password; panics on any divergence from the reference. Returns the
/// number of checks performed.
///
/// # Panics
///
/// Panics if the guest disagrees with [`reference_check`].
pub fn workload(
    rt: &mut elide_enclave::EnclaveRuntime,
    idx: &std::collections::HashMap<String, u64>,
) -> u64 {
    let check = idx["check_password"];
    let mut cases: Vec<Vec<u8>> = vec![
        PASSWORD.to_vec(),
        b"WRONG_PASSWORD!!".to_vec(),
        b"SGXELIDE_CGO2019".to_vec(),
        b"short".to_vec(),
        vec![],
        vec![0u8; 16],
    ];
    for i in 0..32u8 {
        let mut c = PASSWORD.to_vec();
        c[(i % 16) as usize] ^= i + 1;
        cases.push(c);
    }
    let mut n = 0;
    for case in &cases {
        let got = rt.ecall(check, case, 0).expect("check_password ecall").status;
        let expect = u64::from(reference_check(case));
        assert_eq!(got, expect, "guest disagrees with reference for {case:?}");
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{launch_plain, launch_protected};
    use elide_core::sanitizer::DataPlacement;

    #[test]
    fn plain_guest_matches_reference() {
        let app = app();
        let mut p = launch_plain(&app, 10).unwrap();
        assert!(workload(&mut p.runtime, &p.indices) > 30);
    }

    #[test]
    fn accepts_only_the_real_password() {
        let app = app();
        let mut p = launch_plain(&app, 10).unwrap();
        let check = p.indices["check_password"];
        assert_eq!(p.runtime.ecall(check, PASSWORD, 0).unwrap().status, 1);
        assert_eq!(p.runtime.ecall(check, b"AAAAAAAAAAAAAAAA", 0).unwrap().status, 0);
    }

    #[test]
    fn protected_roundtrip() {
        let app = app();
        let mut p = launch_protected(&app, DataPlacement::LocalEncrypted, 11).unwrap();
        let check = p.indices["check_password"];
        assert!(p.app.runtime.ecall(check, PASSWORD, 0).is_err());
        p.restore().unwrap();
        assert_eq!(p.app.runtime.ecall(check, PASSWORD, 0).unwrap().status, 1);
        workload(&mut p.app.runtime, &p.indices);
    }

    #[test]
    fn sanitized_image_hides_the_embedded_comparison() {
        let app = app();
        let image = app.build_elide_image().unwrap();
        let needle = signature();
        assert!(elide_core::attack::find_signature(&image, &needle));
        let p = launch_protected(&app, DataPlacement::Remote, 12).unwrap();
        assert!(
            !elide_core::attack::find_signature(&p.package.image, &needle),
            "sanitized image must not contain the password-derived immediates"
        );
    }
}
