//! ELF64 parser: reads the header tables out of a byte image while keeping
//! the raw bytes available for in-place patching (the sanitizer zeroes
//! function bodies and flips segment flags directly in the file image).

use crate::types::*;

/// A parsed ELF file. Owns the raw bytes; patch operations mutate them and
/// the header views stay consistent via [`ElfFile::reparse`].
#[derive(Debug, Clone)]
pub struct ElfFile {
    bytes: Vec<u8>,
    header: FileHeader,
    segments: Vec<ProgramHeader>,
    sections: Vec<SectionHeader>,
    symbols: Vec<SymbolEntry>,
}

fn read_u16(b: &[u8], off: usize) -> Result<u16, ElfError> {
    b.get(off..off + 2)
        .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
        .ok_or(ElfError::Truncated { what: "u16 field" })
}

fn read_u32(b: &[u8], off: usize) -> Result<u32, ElfError> {
    b.get(off..off + 4)
        .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
        .ok_or(ElfError::Truncated { what: "u32 field" })
}

fn read_u64(b: &[u8], off: usize) -> Result<u64, ElfError> {
    b.get(off..off + 8)
        .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
        .ok_or(ElfError::Truncated { what: "u64 field" })
}

fn read_cstr(table: &[u8], off: usize) -> String {
    let end = table[off..].iter().position(|&c| c == 0).map(|p| off + p).unwrap_or(table.len());
    String::from_utf8_lossy(&table[off..end]).into_owned()
}

impl ElfFile {
    /// Parses an ELF64 little-endian image.
    ///
    /// # Errors
    ///
    /// Returns [`ElfError`] if the image is not ELF64/LSB, is truncated, or
    /// declares tables that fall outside the file.
    pub fn parse(bytes: Vec<u8>) -> Result<Self, ElfError> {
        if bytes.len() < EHDR_SIZE {
            return Err(ElfError::Truncated { what: "file header" });
        }
        if bytes[..4] != ELF_MAGIC || bytes[4] != ELFCLASS64 || bytes[5] != ELFDATA2LSB {
            return Err(ElfError::BadMagic);
        }
        let header = FileHeader {
            e_type: read_u16(&bytes, 16)?,
            e_machine: read_u16(&bytes, 18)?,
            e_entry: read_u64(&bytes, 24)?,
            e_phoff: read_u64(&bytes, 32)?,
            e_shoff: read_u64(&bytes, 40)?,
            e_phnum: read_u16(&bytes, 56)?,
            e_shnum: read_u16(&bytes, 60)?,
            e_shstrndx: read_u16(&bytes, 62)?,
        };

        let mut segments = Vec::with_capacity(header.e_phnum as usize);
        for i in 0..header.e_phnum as usize {
            let off = header.e_phoff as usize + i * PHDR_SIZE;
            if off + PHDR_SIZE > bytes.len() {
                return Err(ElfError::Truncated { what: "program header" });
            }
            segments.push(ProgramHeader {
                p_type: read_u32(&bytes, off)?,
                p_flags: read_u32(&bytes, off + 4)?,
                p_offset: read_u64(&bytes, off + 8)?,
                p_vaddr: read_u64(&bytes, off + 16)?,
                p_filesz: read_u64(&bytes, off + 32)?,
                p_memsz: read_u64(&bytes, off + 40)?,
                p_align: read_u64(&bytes, off + 48)?,
            });
        }

        // First pass: raw section headers without names.
        let mut raw_sections = Vec::with_capacity(header.e_shnum as usize);
        for i in 0..header.e_shnum as usize {
            let off = header.e_shoff as usize + i * SHDR_SIZE;
            if off + SHDR_SIZE > bytes.len() {
                return Err(ElfError::Truncated { what: "section header" });
            }
            raw_sections.push(SectionHeader {
                name: String::new(),
                sh_name: read_u32(&bytes, off)?,
                sh_type: read_u32(&bytes, off + 4)?,
                sh_flags: read_u64(&bytes, off + 8)?,
                sh_addr: read_u64(&bytes, off + 16)?,
                sh_offset: read_u64(&bytes, off + 24)?,
                sh_size: read_u64(&bytes, off + 32)?,
                sh_link: read_u32(&bytes, off + 40)?,
                sh_info: read_u32(&bytes, off + 44)?,
                sh_addralign: read_u64(&bytes, off + 48)?,
                sh_entsize: read_u64(&bytes, off + 56)?,
            });
        }

        // Resolve section names via .shstrtab.
        if !raw_sections.is_empty() {
            let strndx = header.e_shstrndx as usize;
            let strtab = raw_sections
                .get(strndx)
                .ok_or(ElfError::Unsupported { what: "e_shstrndx out of range" })?;
            let start = strtab.sh_offset as usize;
            let end = start + strtab.sh_size as usize;
            if end > bytes.len() {
                return Err(ElfError::Truncated { what: "section string table" });
            }
            let table = bytes[start..end].to_vec();
            for sec in &mut raw_sections {
                if (sec.sh_name as usize) < table.len() {
                    sec.name = read_cstr(&table, sec.sh_name as usize);
                }
            }
        }

        // Symbols.
        let mut symbols = Vec::new();
        if let Some(symtab) = raw_sections.iter().find(|s| s.sh_type == SHT_SYMTAB) {
            let strtab = raw_sections
                .get(symtab.sh_link as usize)
                .ok_or(ElfError::Unsupported { what: "symtab sh_link out of range" })?;
            let str_start = strtab.sh_offset as usize;
            let str_end = str_start + strtab.sh_size as usize;
            if str_end > bytes.len() {
                return Err(ElfError::Truncated { what: "symbol string table" });
            }
            let strs = bytes[str_start..str_end].to_vec();
            let count = (symtab.sh_size / SYM_SIZE as u64) as usize;
            for i in 0..count {
                let off = symtab.sh_offset as usize + i * SYM_SIZE;
                if off + SYM_SIZE > bytes.len() {
                    return Err(ElfError::Truncated { what: "symbol table" });
                }
                let name_off = read_u32(&bytes, off)? as usize;
                let info = bytes[off + 4];
                let shndx = read_u16(&bytes, off + 6)?;
                symbols.push(SymbolEntry {
                    name: if name_off < strs.len() {
                        read_cstr(&strs, name_off)
                    } else {
                        String::new()
                    },
                    value: read_u64(&bytes, off + 8)?,
                    size: read_u64(&bytes, off + 16)?,
                    sym_type: info & 0xf,
                    binding: info >> 4,
                    shndx,
                });
            }
        }

        Ok(ElfFile { bytes, header, segments, sections: raw_sections, symbols })
    }

    /// Re-parses the current byte image (after external patching).
    ///
    /// # Errors
    ///
    /// Propagates any parse error from the patched image.
    pub fn reparse(self) -> Result<Self, ElfError> {
        ElfFile::parse(self.bytes)
    }

    /// The raw file image.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable access to the raw image for in-place patching. Header views
    /// are *not* refreshed automatically; call [`ElfFile::reparse`] if you
    /// modify header tables (pure content patches don't need it).
    pub fn bytes_mut(&mut self) -> &mut Vec<u8> {
        &mut self.bytes
    }

    /// Consumes the file, returning the raw image.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// The file header.
    pub fn header(&self) -> &FileHeader {
        &self.header
    }

    /// All program headers.
    pub fn segments(&self) -> &[ProgramHeader] {
        &self.segments
    }

    /// All section headers (names resolved).
    pub fn sections(&self) -> &[SectionHeader] {
        &self.sections
    }

    /// All symbols (names resolved).
    pub fn symbols(&self) -> &[SymbolEntry] {
        &self.symbols
    }

    /// Looks up a section by name.
    pub fn section_by_name(&self, name: &str) -> Option<&SectionHeader> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Returns a section's contents.
    ///
    /// # Errors
    ///
    /// Returns [`ElfError::OutOfBounds`] if the section extends past the file
    /// (never the case for files produced by this crate's builder).
    pub fn section_data(&self, section: &SectionHeader) -> Result<&[u8], ElfError> {
        if section.sh_type == SHT_NOBITS {
            return Ok(&[]);
        }
        let start = section.sh_offset as usize;
        let end = start + section.sh_size as usize;
        self.bytes.get(start..end).ok_or(ElfError::OutOfBounds)
    }

    /// Looks up a defined symbol by name.
    pub fn symbol_by_name(&self, name: &str) -> Option<&SymbolEntry> {
        self.symbols.iter().find(|s| s.name == name && s.shndx != 0)
    }

    /// Iterates over defined function symbols — the granularity at which the
    /// sanitizer redacts code.
    pub fn function_symbols(&self) -> impl Iterator<Item = &SymbolEntry> {
        self.symbols.iter().filter(|s| s.is_function())
    }

    /// Translates a virtual address to a file offset using the segment table.
    pub fn vaddr_to_offset(&self, vaddr: u64) -> Option<usize> {
        self.segments.iter().find_map(|seg| {
            if seg.p_type == PT_LOAD && vaddr >= seg.p_vaddr && vaddr < seg.p_vaddr + seg.p_filesz {
                Some((seg.p_offset + (vaddr - seg.p_vaddr)) as usize)
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            ElfFile::parse(vec![0u8; 10]).unwrap_err(),
            ElfError::Truncated { what: "file header" }
        );
        let mut bad = vec![0u8; 128];
        bad[..4].copy_from_slice(b"NOPE");
        assert_eq!(ElfFile::parse(bad).unwrap_err(), ElfError::BadMagic);
    }

    #[test]
    fn rejects_wrong_class() {
        let mut b = vec![0u8; 128];
        b[..4].copy_from_slice(&ELF_MAGIC);
        b[4] = 1; // ELFCLASS32
        b[5] = ELFDATA2LSB;
        assert_eq!(ElfFile::parse(b).unwrap_err(), ElfError::BadMagic);
    }
}
