//! Differential testing of the superblock translator: randomized EV64
//! programs — including self-modifying stores into their own code page,
//! undecodable bytes, wild branches and fuel exhaustion — are executed
//! twice on identical memory images, once under [`Engine::Interp`] and
//! once under [`Engine::Superblock`]. Architectural state after the run
//! (registers, pc, retired count, exit/fault) must be bit-identical:
//! the translator is an optimization, never a semantic.
//!
//! A deterministic coherence test additionally pins down the mid-run
//! invalidation story: a store into the page of the currently executing
//! superblock must take effect for the very next visit of the patched
//! instruction.

use elide_vm::interp::{Engine, Exit, Vm};
use elide_vm::isa::{Instr, Opcode};
use elide_vm::mem::{FlatMemory, VmFault};

const BASE: u64 = 0x10000;
const DATA: u64 = BASE + 0x2000;
const STACK_TOP: u64 = BASE + 0x7000;
const MEM_SIZE: usize = 0x8000;
const FUEL: u64 = 30_000;

/// xorshift64* — deterministic, seedable, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn reg(&mut self) -> u8 {
        // r1..r13: r0 stays an ordinary register but keeping it out makes
        // halt payloads more interesting; r14/r15 are program base / sp.
        1 + self.below(13) as u8
    }
}

/// Knobs for the program generator: the weights steer how often each
/// hazardous construct appears so separate tests can stress one axis.
struct GenCfg {
    /// Out of 100: probability of a store aimed at the code page itself.
    self_mod: u64,
    /// Out of 100: probability of an explicitly undecodable instruction.
    illegal: u64,
    /// Out of 100: probability of a bulk intrinsic (half pinned-valid
    /// args, half whatever garbage the registers hold).
    intrin: u64,
}

fn gen_program(rng: &mut Rng, n: usize, cfg: &GenCfg) -> Vec<Instr> {
    use Opcode::*;
    let alu2 = [Add, Sub, Mul, And, Or, Xor, Shl, Shru, Shrs, Rotl32, Add32, Sub32, Mul32];
    let alui = [Addi, Andi, Ori, Xori, Shli, Shrui, Shrsi, Rotl32i, Add32i];
    let lds = [Ld8u, Ld16u, Ld32u, Ld64];
    let sts = [St8, St16, St32, St64];

    let mut prog = Vec::with_capacity(n + 1);
    while prog.len() < n {
        let i = prog.len();
        let roll = rng.below(100);
        if roll < cfg.self_mod {
            // Store into the code page: r14 holds BASE. Aligned 8-byte
            // stores early in the page can rewrite already-translated
            // instructions (including this one's own superblock).
            let off = (rng.below(64) * 8) as i32;
            prog.push(Instr::new(St64, rng.reg(), 14, 0, off));
        } else if roll < cfg.self_mod + cfg.illegal {
            // An opcode byte that does not decode; reaches the
            // IllegalInstruction path through both engines.
            prog.push(Instr::new(Illegal, 0, 0, 0, 0));
        } else if roll < cfg.self_mod + cfg.illegal + cfg.intrin {
            // Bulk intrinsic. Pinned-valid args exercise the happy path
            // (chunked copies, fuel charging, TLB revalidation); raw
            // register garbage exercises the typed-fault path. Either way
            // both engines must land on the identical outcome.
            if rng.below(2) == 0 && prog.len() + 4 <= n {
                prog.push(Instr::new(Movi, 1, 0, 0, DATA as i32));
                prog.push(Instr::new(Movi, 2, 0, 0, (DATA + 0x1000) as i32));
                prog.push(Instr::new(Movi, 3, 0, 0, 1 + rng.below(256) as i32));
                let idx = [9, 10, 11][rng.below(3) as usize];
                prog.push(Instr::new(Intrin, 0, 0, 0, idx));
            } else {
                prog.push(Instr::new(Intrin, 0, 0, 0, rng.below(16) as i32));
            }
        } else if roll < cfg.self_mod + cfg.illegal + cfg.intrin + 34 {
            let op = alu2[rng.below(alu2.len() as u64) as usize];
            prog.push(Instr::new(op, rng.reg(), rng.reg(), rng.reg(), 0));
        } else if roll < cfg.self_mod + cfg.illegal + cfg.intrin + 50 {
            let op = alui[rng.below(alui.len() as u64) as usize];
            prog.push(Instr::new(op, rng.reg(), rng.reg(), 0, rng.next() as i32));
        } else if roll < cfg.self_mod + cfg.illegal + cfg.intrin + 58 {
            // Constant materialization: movi (+ movhi) — the LImm fusion.
            let d = rng.reg();
            prog.push(Instr::new(Movi, d, 0, 0, rng.next() as i32));
            if rng.below(2) == 0 && prog.len() < n {
                prog.push(Instr::new(Movhi, d, 0, 0, rng.next() as i32));
            }
        } else if roll < cfg.self_mod + cfg.illegal + cfg.intrin + 68 {
            // Data load: r13 is pinned to DATA each iteration below.
            let op = lds[rng.below(lds.len() as u64) as usize];
            prog.push(Instr::new(op, rng.reg(), 13, 0, rng.below(0xFF0) as i32));
        } else if roll < cfg.self_mod + cfg.illegal + cfg.intrin + 76 {
            let op = sts[rng.below(sts.len() as u64) as usize];
            prog.push(Instr::new(op, rng.reg(), 13, 0, rng.below(0xFF0) as i32));
        } else if roll < cfg.self_mod + cfg.illegal + cfg.intrin + 88 {
            // Conditional branch to a random in-program slot (forward or
            // backward — backward edges exercise the loop-unroll side
            // exits, forward ones the taken exits).
            let branches = [Beq, Bne, Bltu, Bgeu, Blts, Bges];
            let op = branches[rng.below(6) as usize];
            let target = rng.below(n as u64) as i64;
            let imm = (target - (i as i64 + 1)) * 8;
            prog.push(Instr::new(op, rng.reg(), rng.reg(), 0, imm as i32));
        } else if roll < cfg.self_mod + cfg.illegal + cfg.intrin + 92 {
            let target = rng.below(n as u64) as i64;
            let imm = (target - (i as i64 + 1)) * 8;
            prog.push(Instr::new(Jmp, 0, 0, 0, imm as i32));
        } else if roll < cfg.self_mod + cfg.illegal + cfg.intrin + 96 {
            // Call a forward slot; the matching ret (if ever reached)
            // exercises the RetHop guard against a possibly-clobbered
            // return slot.
            let target = (i as u64 + 1 + rng.below(8)).min(n as u64 - 1) as i64;
            let imm = (target - (i as i64 + 1)) * 8;
            prog.push(Instr::new(Call, 0, 0, 0, imm as i32));
        } else if roll < cfg.self_mod + cfg.illegal + cfg.intrin + 98 {
            prog.push(Instr::new(Ret, 0, 0, 0, 0));
        } else {
            // Pin the anchors mid-stream so wild ALU results do not leave
            // every load faulting forever: r13 = DATA, r15 = stack.
            prog.push(Instr::new(Movi, 13, 0, 0, DATA as i32));
        }
    }
    prog.push(Instr::new(Halt, 0, 0, 0, 0));
    prog
}

fn load_image(prog: &[Instr], seed: u64) -> FlatMemory {
    let mut mem = FlatMemory::new(BASE, MEM_SIZE);
    for (i, ins) in prog.iter().enumerate() {
        mem.write_at(BASE + i as u64 * 8, &ins.encode());
    }
    // Deterministic non-zero data for loads to chew on.
    let mut rng = Rng(seed | 1);
    for w in 0..0x200u64 {
        mem.write_at(DATA + w * 8, &rng.next().to_le_bytes());
    }
    mem
}

/// Runs `prog` under `engine` on a fresh copy of the image and returns the
/// complete observable outcome.
fn run_one(
    prog: &[Instr],
    seed: u64,
    engine: Engine,
) -> (Result<Exit, VmFault>, [u64; 16], u64, u64) {
    let mut mem = load_image(prog, seed);
    let mut vm = Vm::new(BASE);
    vm.set_engine(engine);
    let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    for r in 1..13 {
        vm.regs[r] = rng.next();
    }
    vm.regs[13] = DATA;
    vm.regs[14] = BASE;
    vm.regs[15] = STACK_TOP;
    let res = vm.run(&mut mem, FUEL);
    (res, vm.regs, vm.pc, vm.retired)
}

fn assert_agree(prog: &[Instr], seed: u64) {
    let (ri, regs_i, pc_i, ret_i) = run_one(prog, seed, Engine::Interp);
    let (rs, regs_s, pc_s, ret_s) = run_one(prog, seed, Engine::Superblock);
    assert_eq!(ri, rs, "exit/fault diverged (seed {seed:#x})");
    assert_eq!(ret_i, ret_s, "retired count diverged (seed {seed:#x})");
    assert_eq!(pc_i, pc_s, "pc diverged (seed {seed:#x})");
    assert_eq!(regs_i, regs_s, "registers diverged (seed {seed:#x})");
}

#[test]
fn random_programs_agree() {
    let cfg = GenCfg { self_mod: 2, illegal: 1, intrin: 0 };
    for case in 0..400u64 {
        let seed = 0xE1DE_0000 + case;
        let mut rng = Rng(seed.wrapping_mul(0x6C62_272E_07BB_0142) | 1);
        let n = 24 + rng.below(180) as usize;
        let prog = gen_program(&mut rng, n, &cfg);
        assert_agree(&prog, seed);
    }
}

#[test]
fn self_modifying_programs_agree() {
    // Heavy self-modification: every ~8th instruction rewrites the code
    // page, so translated blocks are invalidated (and re-translated)
    // constantly, often from inside themselves.
    let cfg = GenCfg { self_mod: 12, illegal: 2, intrin: 0 };
    for case in 0..200u64 {
        let seed = 0x5E1F_0000 + case;
        let mut rng = Rng(seed.wrapping_mul(0x6C62_272E_07BB_0142) | 1);
        let n = 24 + rng.below(120) as usize;
        let prog = gen_program(&mut rng, n, &cfg);
        assert_agree(&prog, seed);
    }
}

#[test]
fn raw_byte_soup_agrees() {
    // No structure at all: random bytes, many of which do not decode.
    // Both engines must report the identical IllegalInstruction address.
    for case in 0..100u64 {
        let seed = 0xB17E_0000 + case;
        let mut rng = Rng(seed | 1);
        let mut mem_bytes = Vec::new();
        for _ in 0..64 {
            mem_bytes.extend_from_slice(&rng.next().to_le_bytes());
        }
        let run = |engine: Engine| {
            let mut mem = FlatMemory::new(BASE, MEM_SIZE);
            mem.write_at(BASE, &mem_bytes);
            let mut vm = Vm::new(BASE);
            vm.set_engine(engine);
            vm.regs[13] = DATA;
            vm.regs[15] = STACK_TOP;
            let res = vm.run(&mut mem, FUEL);
            (res, vm.regs, vm.pc, vm.retired)
        };
        assert_eq!(run(Engine::Interp), run(Engine::Superblock), "seed {seed:#x}");
    }
}

/// A loop whose body stores into its own code page, overwriting one of its
/// own instructions mid-run: iteration 0 executes the original `addi r1 += 1`,
/// every later iteration must see the patched `addi r1 += 100`. Exactness
/// here *is* the translator's invalidation story — a stale superblock would
/// keep adding 1.
#[test]
fn own_page_store_invalidates_mid_run() {
    use Opcode::*;
    // r2 = loop counter, r1 = accumulator, r3 = patched instruction bits,
    // r14 = BASE.
    let patched = Instr::new(Addi, 1, 1, 0, 100);
    let prog = [
        // idx 0: r3 = encoded patch (materialized from memory at DATA).
        Instr::new(Ld64, 3, 13, 0, 0),
        // idx 1: loop head — addi r1, r1, 1  <-- patch target
        Instr::new(Addi, 1, 1, 0, 1),
        // idx 2: store r3 over idx 1 (own page, possibly own block).
        Instr::new(St64, 3, 14, 0, 8),
        // idx 3: r2 -= 1 via addi -1
        Instr::new(Addi, 2, 2, 0, -1),
        // idx 4: loop while r0 < r2
        Instr::new(Bltu, 0, 2, 0, -(4 * 8)),
        Instr::new(Halt, 0, 0, 0, 0),
    ];
    for engine in [Engine::Interp, Engine::Superblock] {
        let mut mem = FlatMemory::new(BASE, MEM_SIZE);
        for (i, ins) in prog.iter().enumerate() {
            mem.write_at(BASE + i as u64 * 8, &ins.encode());
        }
        mem.write_at(DATA, &patched.encode());
        let mut vm = Vm::new(BASE);
        vm.set_engine(engine);
        vm.regs[2] = 10;
        vm.regs[13] = DATA;
        vm.regs[14] = BASE;
        vm.regs[15] = STACK_TOP;
        let exit = vm.run(&mut mem, FUEL).expect("run");
        assert_eq!(exit, Exit::Halt(0));
        // Iteration 1 adds 1 (pre-patch), iterations 2..=10 add 100 each.
        assert_eq!(vm.regs[1], 1 + 9 * 100, "stale superblock under {engine:?}");
    }
}

/// The counters satellite: a hot loop must actually retire through the
/// translated tier, and the same program under `Engine::Interp` must not.
#[test]
fn stats_attribute_retirement_to_the_right_tier() {
    use Opcode::*;
    let prog = [
        Instr::new(Movi, 1, 0, 0, 0),
        Instr::new(Add, 3, 3, 1, 0),
        Instr::new(Xor, 4, 4, 3, 0),
        Instr::new(Addi, 1, 1, 0, 1),
        Instr::new(Bltu, 1, 2, 0, -(3 * 8)),
        Instr::new(Halt, 0, 0, 0, 0),
    ];
    let run = |engine: Engine| {
        let mut mem = FlatMemory::new(BASE, MEM_SIZE);
        for (i, ins) in prog.iter().enumerate() {
            mem.write_at(BASE + i as u64 * 8, &ins.encode());
        }
        let mut vm = Vm::new(BASE);
        vm.set_engine(engine);
        vm.regs[2] = 1000;
        vm.run(&mut mem, FUEL).expect("run");
        (vm.stats, vm.retired)
    };

    let (sb, retired) = run(Engine::Superblock);
    assert!(sb.blocks_entered > 0, "no superblock was ever entered");
    assert!(sb.blocks_translated > 0, "no superblock was ever translated");
    assert!(
        sb.blocks_entered > sb.blocks_translated,
        "translated blocks were never reused: {sb:?}"
    );
    assert_eq!(sb.trans_retired + sb.interp_retired, retired, "tier attribution must sum");
    assert!(
        sb.trans_retired >= retired * 9 / 10,
        "a straight hot loop should retire ≥90% translated: {sb:?}"
    );

    let (it, retired_i) = run(Engine::Interp);
    assert_eq!(it.blocks_entered, 0);
    assert_eq!(it.trans_retired, 0);
    assert_eq!(it.interp_retired, retired_i);
}

/// Random programs peppered with bulk intrinsics — pinned-valid sequences
/// and raw garbage alike — agree across engines, including the extra fuel
/// the intrinsics charge into the retired counter and the typed faults
/// their argument checks raise.
#[test]
fn intrinsic_programs_agree() {
    let cfg = GenCfg { self_mod: 3, illegal: 1, intrin: 8 };
    for case in 0..300u64 {
        let seed = 0x147E_0000 + case;
        let mut rng = Rng(seed.wrapping_mul(0x6C62_272E_07BB_0142) | 1);
        let n = 24 + rng.below(140) as usize;
        let prog = gen_program(&mut rng, n, &cfg);
        assert_agree(&prog, seed);
    }
}

/// The data-TLB is write-through: a store to a page promoted into the TLB
/// must be visible to the very next load, under both engines.
#[test]
fn dtlb_write_through_is_coherent() {
    use Opcode::*;
    let prog = [
        // Two consecutive loads promote DATA's page into the TLB.
        Instr::new(Ld64, 1, 13, 0, 0),
        Instr::new(Ld64, 1, 13, 0, 0),
        Instr::new(Movi, 2, 0, 0, 77),
        Instr::new(St64, 2, 13, 0, 0),
        Instr::new(Ld64, 3, 13, 0, 0),
        Instr::new(Halt, 0, 0, 0, 0),
    ];
    for engine in [Engine::Interp, Engine::Superblock] {
        let mut mem = load_image(&prog, 1);
        let mut vm = Vm::new(BASE);
        vm.set_engine(engine);
        vm.regs[13] = DATA;
        vm.regs[15] = STACK_TOP;
        vm.run(&mut mem, FUEL).expect("run");
        assert_eq!(vm.regs[3], 77, "stale TLB read under {engine:?}");
    }
}

/// A bulk intrinsic that rewrites a TLB-promoted page bumps the page
/// generation; the post-intrinsic revalidation must drop the stale entry
/// so the next load reads the fresh bytes.
#[test]
fn intrinsic_stores_invalidate_cached_pages() {
    use Opcode::*;
    let prog = [
        // Promote DATA's page.
        Instr::new(Ld64, 4, 13, 0, 0),
        Instr::new(Ld64, 4, 13, 0, 0),
        // memset(DATA, 0x5A, 64) behind the TLB's back.
        Instr::new(Movi, 1, 0, 0, DATA as i32),
        Instr::new(Movi, 2, 0, 0, 0x5A),
        Instr::new(Movi, 3, 0, 0, 64),
        Instr::new(Intrin, 0, 0, 0, 10),
        Instr::new(Ld64, 5, 13, 0, 0),
        Instr::new(Halt, 0, 0, 0, 0),
    ];
    for engine in [Engine::Interp, Engine::Superblock] {
        let mut mem = load_image(&prog, 1);
        let mut vm = Vm::new(BASE);
        vm.set_engine(engine);
        vm.regs[13] = DATA;
        vm.regs[15] = STACK_TOP;
        vm.run(&mut mem, FUEL).expect("run");
        assert_ne!(vm.regs[4], 0x5A5A_5A5A_5A5A_5A5A, "pre-set data was already 0x5A");
        assert_eq!(vm.regs[5], 0x5A5A_5A5A_5A5A_5A5A, "TLB served stale bytes under {engine:?}");
    }
}

/// Bulk fuel is charged into `retired` identically in both engines and
/// scales exactly with the byte count: two MEMCPYs differing only in
/// length retire exactly `bulk_fuel` apart.
#[test]
fn intrinsic_fuel_is_charged_per_byte() {
    use elide_vm::isa::intrinsics::bulk_fuel;
    use Opcode::*;
    let run = |len: i32, engine: Engine| {
        let prog = [
            Instr::new(Movi, 1, 0, 0, DATA as i32),
            Instr::new(Movi, 2, 0, 0, (DATA + 0x1000) as i32),
            Instr::new(Movi, 3, 0, 0, len),
            Instr::new(Intrin, 0, 0, 0, 9),
            Instr::new(Halt, 0, 0, 0, 0),
        ];
        let mut mem = load_image(&prog, 1);
        let mut vm = Vm::new(BASE);
        vm.set_engine(engine);
        vm.regs[15] = STACK_TOP;
        vm.run(&mut mem, FUEL).expect("run");
        vm.retired
    };
    for engine in [Engine::Interp, Engine::Superblock] {
        let small = run(8, engine);
        let big = run(1024, engine);
        assert_eq!(
            big - small,
            bulk_fuel(1024) - bulk_fuel(8),
            "bulk fuel attribution wrong under {engine:?}"
        );
    }
    assert_eq!(run(512, Engine::Interp), run(512, Engine::Superblock));
}

/// Fuel exhaustion must cut an intrinsic off at the same boundary in both
/// engines: an intrin whose bulk charge exceeds the remaining fuel faults
/// with OutOfFuel before any extra work is accounted.
#[test]
fn intrinsic_fuel_exhaustion_agrees() {
    use Opcode::*;
    let prog = [
        Instr::new(Movi, 1, 0, 0, DATA as i32),
        Instr::new(Movi, 2, 0, 0, (DATA + 0x1000) as i32),
        Instr::new(Movi, 3, 0, 0, 1024),
        Instr::new(Intrin, 0, 0, 0, 9),
        Instr::new(Halt, 0, 0, 0, 0),
    ];
    // bulk_fuel(1024) = 128 extra on top of 4 instructions: probe fuel
    // values straddling every boundary.
    for fuel in [0u64, 3, 4, 5, 100, 131, 132, 133, 200] {
        let run = |engine: Engine| {
            let mut mem = load_image(&prog, 1);
            let mut vm = Vm::new(BASE);
            vm.set_engine(engine);
            vm.regs[15] = STACK_TOP;
            let res = vm.run(&mut mem, fuel);
            (res, vm.pc, vm.retired)
        };
        assert_eq!(run(Engine::Interp), run(Engine::Superblock), "fuel={fuel}");
    }
}

/// Fuel exhaustion must fault at the same instruction boundary under both
/// tiers (block-granular accounting refunds unconsumed fuel on side exits,
/// so the terminal OutOfFuel point is identical).
#[test]
fn fuel_exhaustion_agrees() {
    use Opcode::*;
    let prog =
        [Instr::new(Addi, 1, 1, 0, 1), Instr::new(Jmp, 0, 0, 0, -16), Instr::new(Halt, 0, 0, 0, 0)];
    for fuel in [0u64, 1, 2, 3, 7, 100, 101, 1001] {
        let run = |engine: Engine| {
            let mut mem = FlatMemory::new(BASE, MEM_SIZE);
            for (i, ins) in prog.iter().enumerate() {
                mem.write_at(BASE + i as u64 * 8, &ins.encode());
            }
            let mut vm = Vm::new(BASE);
            vm.set_engine(engine);
            let res = vm.run(&mut mem, fuel);
            (res, vm.regs[1], vm.pc, vm.retired)
        };
        assert_eq!(run(Engine::Interp), run(Engine::Superblock), "fuel={fuel}");
    }
}
