//! Tests for the features the paper discusses but did not implement (§7),
//! which this reproduction adds: post-restore write revocation, paging of
//! restored enclaves, and enclave-identity binding of sealed data.

use sgxelide::apps::crackme;
use sgxelide::apps::harness::{launch_protected, App};
use sgxelide::core::sanitizer::DataPlacement;
use sgxelide::crypto::rng::SeededRandom;
use sgxelide::sgx::enclave::AccessKind;
use sgxelide::sgx::paging::PagingManager;

/// Guest that tries to overwrite its own (restored) text section.
fn self_patching_app() -> App {
    App {
        name: "selfpatch",
        asm: ".section text\n\
              .global patch_self\n.func patch_self\n\
              \x20   la   r1, victim\n\
              \x20   movi r2, 0\n\
              \x20   st64 r2, [r1]\n\
              \x20   movi r0, 1\n\
              \x20   ret\n.endfunc\n\
              .global victim\n.func victim\n\
              \x20   movi r0, 7\n\
              \x20   ret\n.endfunc\n"
            .to_string(),
        ecalls: vec!["patch_self", "victim"],
    }
}

/// §7: after restoration, the host revokes write access to the text
/// segment ("We added an mprotect call revoking PROT_WRITE for the enclave
/// text section immediately after restoring"). An in-enclave write gadget
/// can no longer modify code.
#[test]
fn os_write_revocation_blocks_code_injection() {
    let app = self_patching_app();
    let mut p = launch_protected(&app, DataPlacement::Remote, 0xE01).unwrap();
    p.restore().unwrap();

    // Without revocation, the SgxElide-writable text lets the gadget win.
    assert_eq!(p.app.runtime.ecall(p.indices["patch_self"], &[], 0).unwrap().status, 1);
    assert!(
        p.app.runtime.ecall(p.indices["victim"], &[], 0).is_err(),
        "victim overwritten with zeroes must fault"
    );

    // Fresh instance: restore, then revoke like the paper does.
    let mut p = launch_protected(&app, DataPlacement::Remote, 0xE02).unwrap();
    p.restore().unwrap();
    let elf = sgxelide::elf::ElfFile::parse(p.package.image.clone()).unwrap();
    let text = elf.section_by_name(".text").unwrap();
    p.app.runtime.os_revoke_write(text.sh_addr, text.sh_size);

    assert!(
        p.app.runtime.ecall(p.indices["patch_self"], &[], 0).is_err(),
        "write gadget must fault after mprotect revocation"
    );
    assert_eq!(p.app.runtime.ecall(p.indices["victim"], &[], 0).unwrap().status, 7);
}

/// §7's caveat: the revocation is OS-enforced, so a malicious OS ignores
/// it — the residual risk the paper acknowledges.
#[test]
fn malicious_os_ignores_write_revocation() {
    let app = self_patching_app();
    let mut p = launch_protected(&app, DataPlacement::Remote, 0xE03).unwrap();
    p.restore().unwrap();
    let elf = sgxelide::elf::ElfFile::parse(p.package.image.clone()).unwrap();
    let text = elf.section_by_name(".text").unwrap();
    p.app.runtime.os_revoke_write(text.sh_addr, text.sh_size);
    p.app.runtime.set_malicious_os(true);
    assert_eq!(
        p.app.runtime.ecall(p.indices["patch_self"], &[], 0).unwrap().status,
        1,
        "a malicious OS does not honor mprotect"
    );
}

/// EPC paging of a *restored* enclave: evicted pages carrying restored
/// secrets are ciphertext in untrusted memory and reload intact.
#[test]
fn paging_out_restored_secrets_keeps_them_encrypted() {
    let app = crackme::app();
    let mut p = launch_protected(&app, DataPlacement::Remote, 0xE04).unwrap();
    p.restore().unwrap();
    let check = p.indices["check_password"];
    assert_eq!(p.app.runtime.ecall(check, crackme::PASSWORD, 0).unwrap().status, 1);

    // Evict every resident page, scanning the blobs for the secret.
    let mut rng = SeededRandom::new(0xE05);
    let mut pm = PagingManager::new(&mut rng);
    let needle = crackme::signature();
    let world = p.app.runtime.world_mut();
    let pages = world.enclave.resident_pages();
    let mut blobs = Vec::new();
    for off in pages {
        let blob = pm.ewb(&mut world.enclave, off, &mut rng).unwrap();
        assert!(
            !blob.ciphertext.windows(needle.len()).any(|w| w == needle),
            "restored secret visible in evicted page"
        );
        blobs.push(blob);
    }
    // Fully evicted: even the entry fails.
    assert!(p.app.runtime.ecall(check, crackme::PASSWORD, 0).is_err());

    // Reload and run again.
    let world = p.app.runtime.world_mut();
    for blob in &blobs {
        pm.eldu(&mut world.enclave, blob).unwrap();
    }
    assert_eq!(p.app.runtime.ecall(check, crackme::PASSWORD, 0).unwrap().status, 1);
}

/// Sealed blobs bind to MRENCLAVE: a *different* protected app cannot
/// consume another app's sealed restore blob (it falls back to the server
/// and restores its own code correctly).
#[test]
fn sealed_blob_bound_to_enclave_identity() {
    let app_a = crackme::app();
    let mut a = launch_protected(&app_a, DataPlacement::Remote, 0xE06).unwrap();
    a.restore().unwrap();
    let stolen = a.sealed.lock().unwrap().clone().expect("sealed blob exists");

    let app_b = sgxelide::apps::game2048::app();
    let mut b = launch_protected(&app_b, DataPlacement::Remote, 0xE07).unwrap();
    // Plant A's sealed blob into B's store.
    *b.sealed.lock().unwrap() = Some(stolen);
    b.restore().unwrap();
    // B restored *its own* code via the server (seal decrypt failed and
    // fell through), so its workload still passes.
    sgxelide::apps::game2048::workload(&mut b.app.runtime, &b.indices);
    assert!(b.server.handshakes() >= 1, "server fallback must have happened");
}

/// Restored enclaves survive an `EWB`/`ELDU` cycle *of the text pages
/// specifically* while running — the pages come back with their (writable)
/// permissions, preserving SgxElide's invariants.
#[test]
fn paging_preserves_text_writability() {
    let app = crackme::app();
    let mut p = launch_protected(&app, DataPlacement::Remote, 0xE08).unwrap();
    p.restore().unwrap();
    let elf = sgxelide::elf::ElfFile::parse(p.package.image.clone()).unwrap();
    let text = elf.section_by_name(".text").unwrap();
    let text_page_off = text.sh_addr - p.app.runtime.enclave().base();

    let mut rng = SeededRandom::new(0xE09);
    let mut pm = PagingManager::new(&mut rng);
    let world = p.app.runtime.world_mut();
    let blob = pm.ewb(&mut world.enclave, text_page_off & !0xFFF, &mut rng).unwrap();
    pm.eldu(&mut world.enclave, &blob).unwrap();
    let perms = p.app.runtime.page_perms(text.sh_addr).unwrap();
    assert!(perms.writable() && perms.executable());
    // And the code still runs.
    let check = p.indices["check_password"];
    assert_eq!(p.app.runtime.ecall(check, crackme::PASSWORD, 0).unwrap().status, 1);
}

/// The enclave's own read of its text equals the pre-sanitization bytes
/// even after an eviction/reload cycle of every page.
#[test]
fn full_evict_reload_is_transparent() {
    let app = sgxelide::apps::biniax::app();
    let mut p = launch_protected(&app, DataPlacement::LocalEncrypted, 0xE0A).unwrap();
    p.restore().unwrap();
    let enclave = p.app.runtime.enclave();
    let base = enclave.base();
    let before = enclave.read(base + 0x1000, 512, AccessKind::Read).unwrap();

    let mut rng = SeededRandom::new(0xE0B);
    let mut pm = PagingManager::new(&mut rng);
    let world = p.app.runtime.world_mut();
    let pages = world.enclave.resident_pages();
    let blobs: Vec<_> =
        pages.iter().map(|&off| pm.ewb(&mut world.enclave, off, &mut rng).unwrap()).collect();
    for blob in &blobs {
        pm.eldu(&mut world.enclave, blob).unwrap();
    }
    let after = p.app.runtime.enclave().read(base + 0x1000, 512, AccessKind::Read).unwrap();
    assert_eq!(before, after);
}
