//! Restore throughput under client concurrency: one authentication server
//! (the layered service: framed wire → per-connection sessions → secret
//! store → bounded worker pool) provisioning N parallel clients over
//! loopback TCP. Companion to Table 2's per-restore latency — this bench
//! answers "how many enclaves can one server bring up at once?".

use elide_bench::stats;
use elide_core::api::{protect, Mode, Platform};
use elide_core::elide_asm::ELIDE_ASM;
use elide_core::protocol::TcpTransport;
use elide_core::restore::new_sealed_store;
use elide_core::sanitizer::DataPlacement;
use elide_core::server::AuthServer;
use elide_core::service::{serve, ServiceConfig};
use elide_core::transport::tcp::TcpAcceptor;
use elide_crypto::rng::SeededRandom;
use elide_crypto::rsa::RsaKeyPair;
use elide_enclave::image::EnclaveImageBuilder;
use sgx_sim::quote::AttestationService;
use std::sync::{Arc, Mutex};
use std::time::Instant;

const CONCURRENCY: [usize; 3] = [1, 4, 16];
const ROUNDS: usize = 5;

fn main() {
    let mut b = EnclaveImageBuilder::new();
    b.source(ELIDE_ASM)
        .source(".section text\n.global s\n.func s\n    movi r0, 7\n    ret\n.endfunc\n")
        .ecall("s")
        .ecall("elide_restore");
    let image = b.build().expect("build");
    let mut rng = SeededRandom::new(0x7B);
    let vendor = RsaKeyPair::generate(512, &mut rng);
    let package = Arc::new(
        protect(&image, &vendor, &Mode::Whitelist, DataPlacement::Remote, &mut rng)
            .expect("protect"),
    );
    let mut ias = AttestationService::new();
    let platform = Arc::new(Platform::provision(&mut rng, &mut ias));
    let server = Arc::new(package.make_server(ias));

    println!("# Restore throughput: one server, N concurrent TCP clients");
    println!("# ({} rounds per N; full launch + attested restore per client)", ROUNDS);
    println!(
        "{:<10} {:>8} {:>14} {:>14} {:>16}",
        "clients", "rounds", "wall mean ms", "wall std ms", "restores/sec"
    );

    for &n in &CONCURRENCY {
        let mut samples = Vec::with_capacity(ROUNDS);
        for round in 0..ROUNDS {
            samples.push(run_round(&package, &platform, &server, n, round as u64));
        }
        let s = stats(&samples);
        let throughput = n as f64 / (s.mean_ms / 1e3);
        println!(
            "{:<10} {:>8} {:>14.4} {:>14.4} {:>16.1}",
            n, ROUNDS, s.mean_ms, s.std_ms, throughput
        );
    }
}

/// One round: serve `n` clients to completion, returning wall seconds.
fn run_round(
    package: &Arc<elide_core::api::ProtectedPackage>,
    platform: &Arc<Platform>,
    server: &Arc<AuthServer>,
    n: usize,
    round: u64,
) -> f64 {
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
    let addr = acceptor.local_addr().expect("addr").to_string();
    let handle =
        serve(acceptor, Arc::clone(server), ServiceConfig::default().with_max_connections(Some(n)));

    let t0 = Instant::now();
    let clients: Vec<_> = (0..n)
        .map(|i| {
            let package = Arc::clone(package);
            let platform = Arc::clone(platform);
            let addr = addr.clone();
            std::thread::spawn(move || {
                let transport =
                    Arc::new(Mutex::new(TcpTransport::connect(&addr).expect("connect")));
                let mut app = package
                    .launch(&platform, transport, new_sealed_store(), round * 1000 + i as u64)
                    .expect("launch");
                app.restore(1).expect("restore");
                assert_eq!(app.runtime.ecall(0, &[], 0).expect("ecall").status, 7);
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    handle.join();
    elapsed
}
