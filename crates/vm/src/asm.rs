//! The EV64 assembler: translates assembly text into relocatable
//! [`Object`]s.
//!
//! # Syntax
//!
//! ```text
//! ; comment            # also a comment
//! .section text        ; text | rodata | data | bss
//! .global memcpy8      ; export with global binding
//! .func memcpy8        ; begin a function symbol (size measured to .endfunc)
//!     beq   r2, r0, .done
//! .loop:
//!     ld64  r4, [r1]
//!     st64  r4, [r3]
//!     addi  r1, r1, 8
//!     addi  r3, r3, 8
//!     addi  r2, r2, -8
//!     bne   r2, r0, .loop
//! .done:
//!     ret
//! .endfunc
//!
//! .section rodata
//! table:
//!     .quad memcpy8    ; 64-bit absolute relocation
//!     .word 42         ; u32
//!     .byte 1, 2, 3
//!     .ascii "hi"
//!     .asciz "hi"      ; NUL-terminated
//!     .zero 16
//!     .align 8
//! ```
//!
//! Labels beginning with `.` are local to the enclosing function and are
//! name-mangled (`memcpy8.loop`), so they never collide across functions.
//!
//! Pseudo-instructions: `li rd, imm64`, `la rd, symbol`, `push rs`,
//! `pop rd`, `nop`.

use crate::isa::{Instr, Opcode, REG_SP};
use crate::obj::{ObjSymbol, Object, Reloc, RelocKind, SectionData, SymKind};
use std::collections::HashMap;

/// Assembly error with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// One parsed operand.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Operand {
    Reg(u8),
    Imm(i64),
    Sym(String),
    /// `[reg + disp]`
    Mem(u8, i32),
}

struct Assembler {
    sections: Vec<(String, SectionData)>,
    current: usize,
    symbols: Vec<ObjSymbol>,
    globals: Vec<String>,
    func: Option<(String, u64)>, // name, start offset in current section
    func_section: usize,
    line: usize,
}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError { line, msg: msg.into() })
}

/// Assembles EV64 source text into a relocatable object.
///
/// # Errors
///
/// Returns [`AsmError`] naming the offending line for any syntax error,
/// unknown mnemonic, malformed operand, or structural problem (e.g. a
/// `.func` without `.endfunc`).
///
/// # Examples
///
/// ```
/// let obj = elide_vm::asm::assemble(
///     ".section text\n.global f\n.func f\n    movi r0, 7\n    ret\n.endfunc\n",
/// ).unwrap();
/// assert_eq!(obj.symbol("f").unwrap().size, 16);
/// ```
pub fn assemble(source: &str) -> Result<Object, AsmError> {
    let mut asm = Assembler {
        sections: vec![("text".to_string(), SectionData::default())],
        current: 0,
        symbols: Vec::new(),
        globals: Vec::new(),
        func: None,
        func_section: 0,
        line: 0,
    };
    for (idx, raw_line) in source.lines().enumerate() {
        asm.line = idx + 1;
        let line = strip_comment(raw_line).trim().to_string();
        if line.is_empty() {
            continue;
        }
        asm.process_line(&line)?;
    }
    if let Some((name, _)) = &asm.func {
        return err(asm.line, format!("function {name} missing .endfunc"));
    }
    // Apply .global markers.
    for g in &asm.globals {
        if let Some(sym) = asm.symbols.iter_mut().find(|s| &s.name == g) {
            sym.global = true;
        }
        // A .global for an undefined symbol is allowed; the linker will
        // report it if it is actually referenced and never defined.
    }
    Ok(Object { sections: asm.sections, symbols: asm.symbols })
}

fn strip_comment(line: &str) -> &str {
    // Respect string literals when searching for comment characters.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ';' | '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

impl Assembler {
    fn section_is_bss(&self) -> bool {
        self.sections[self.current].0 == "bss"
    }

    fn cur(&mut self) -> &mut SectionData {
        &mut self.sections[self.current].1
    }

    fn offset(&self) -> u64 {
        self.sections[self.current].1.size
    }

    fn emit_bytes(&mut self, bytes: &[u8]) -> Result<(), AsmError> {
        if self.section_is_bss() {
            return err(self.line, "cannot emit initialized bytes into bss");
        }
        let s = self.cur();
        s.bytes.extend_from_slice(bytes);
        s.size = s.bytes.len() as u64;
        Ok(())
    }

    fn emit_instr(&mut self, i: Instr) -> Result<(), AsmError> {
        self.emit_bytes(&i.encode())
    }

    fn mangle(&self, label: &str) -> Result<String, AsmError> {
        if let Some(stripped) = label.strip_prefix('.') {
            match &self.func {
                Some((f, _)) => Ok(format!("{f}.{stripped}")),
                None => err(self.line, format!("local label {label} outside a function")),
            }
        } else {
            Ok(label.to_string())
        }
    }

    fn define_symbol(&mut self, name: &str, kind: SymKind) -> Result<(), AsmError> {
        let mangled = self.mangle(name)?;
        if self.symbols.iter().any(|s| s.name == mangled) {
            return err(self.line, format!("duplicate symbol {mangled}"));
        }
        let section = self.sections[self.current].0.clone();
        self.symbols.push(ObjSymbol {
            name: mangled,
            section,
            offset: self.offset(),
            size: 0,
            kind,
            global: false,
        });
        Ok(())
    }

    fn process_line(&mut self, line: &str) -> Result<(), AsmError> {
        // Label definition?
        if let Some(colon) = find_label_colon(line) {
            let label = &line[..colon];
            if !is_ident(label) {
                return err(self.line, format!("invalid label name {label:?}"));
            }
            let kind = if label.starts_with('.') { SymKind::Label } else { SymKind::Object };
            self.define_symbol(label, kind)?;
            let rest = line[colon + 1..].trim();
            if rest.is_empty() {
                return Ok(());
            }
            return self.process_line(rest);
        }

        if let Some(directive) = line.strip_prefix('.') {
            // Directives that are really label-ish were handled above;
            // these are ".name args".
            let (name, args) = split_first_word(directive);
            return self.directive(name, args.trim());
        }

        let (mnemonic, rest) = split_first_word(line);
        let operands = parse_operands(rest, self.line)?;
        self.instruction(&mnemonic.to_ascii_lowercase(), &operands)
    }

    fn directive(&mut self, name: &str, args: &str) -> Result<(), AsmError> {
        match name {
            "section" => {
                let sec = args.trim_start_matches('.');
                if !matches!(sec, "text" | "rodata" | "data" | "bss") {
                    return err(self.line, format!("unknown section {args:?}"));
                }
                if let Some(i) = self.sections.iter().position(|(n, _)| n == sec) {
                    self.current = i;
                } else {
                    self.sections.push((sec.to_string(), SectionData::default()));
                    self.current = self.sections.len() - 1;
                }
                Ok(())
            }
            "global" => {
                if !is_ident(args) {
                    return err(self.line, format!("invalid symbol name {args:?}"));
                }
                self.globals.push(args.to_string());
                Ok(())
            }
            "func" => {
                if self.func.is_some() {
                    return err(self.line, "nested .func");
                }
                if !is_ident(args) || args.starts_with('.') {
                    return err(self.line, format!("invalid function name {args:?}"));
                }
                self.define_symbol(args, SymKind::Func)?;
                self.func = Some((args.to_string(), self.offset()));
                self.func_section = self.current;
                Ok(())
            }
            "endfunc" => {
                let (fname, start) = match self.func.take() {
                    Some(f) => f,
                    None => return err(self.line, ".endfunc without .func"),
                };
                if self.func_section != self.current {
                    return err(self.line, "section changed inside a function");
                }
                let end = self.offset();
                let sym = self
                    .symbols
                    .iter_mut()
                    .find(|s| s.name == fname)
                    .expect("function symbol defined by .func");
                sym.size = end - start;
                Ok(())
            }
            "byte" => {
                let vals = parse_int_list(args, self.line)?;
                let bytes: Vec<u8> = vals.iter().map(|&v| v as u8).collect();
                self.emit_bytes(&bytes)
            }
            "word" => {
                for v in parse_int_list(args, self.line)? {
                    self.emit_bytes(&(v as u32).to_le_bytes())?;
                }
                Ok(())
            }
            "quad" => {
                for piece in split_commas(args) {
                    let piece = piece.trim();
                    if let Ok(v) = parse_int(piece) {
                        self.emit_bytes(&(v as u64).to_le_bytes())?;
                    } else if is_ident(piece) {
                        let sym = self.mangle(piece)?;
                        let offset = self.offset();
                        self.cur().relocs.push(Reloc {
                            offset,
                            symbol: sym,
                            kind: RelocKind::Abs64,
                            addend: 0,
                        });
                        self.emit_bytes(&0u64.to_le_bytes())?;
                    } else {
                        return err(self.line, format!("bad .quad operand {piece:?}"));
                    }
                }
                Ok(())
            }
            "ascii" | "asciz" => {
                let s = parse_string(args, self.line)?;
                self.emit_bytes(s.as_bytes())?;
                if name == "asciz" {
                    self.emit_bytes(&[0])?;
                }
                Ok(())
            }
            "zero" => {
                let n = parse_int(args).map_err(|e| AsmError { line: self.line, msg: e })?;
                if n < 0 {
                    return err(self.line, ".zero with negative size");
                }
                if self.section_is_bss() {
                    let s = self.cur();
                    s.size += n as u64;
                    Ok(())
                } else {
                    self.emit_bytes(&vec![0u8; n as usize])
                }
            }
            "align" => {
                let n = parse_int(args).map_err(|e| AsmError { line: self.line, msg: e })?;
                if n <= 0 || (n & (n - 1)) != 0 {
                    return err(self.line, ".align requires a positive power of two");
                }
                let n = n as u64;
                let pad = (n - self.offset() % n) % n;
                if self.section_is_bss() {
                    self.cur().size += pad;
                    Ok(())
                } else {
                    self.emit_bytes(&vec![0u8; pad as usize])
                }
            }
            other => err(self.line, format!("unknown directive .{other}")),
        }
    }

    fn reloc_here(
        &mut self,
        field_offset: u64,
        symbol: &str,
        kind: RelocKind,
    ) -> Result<(), AsmError> {
        let sym = self.mangle(symbol)?;
        self.cur().relocs.push(Reloc { offset: field_offset, symbol: sym, kind, addend: 0 });
        Ok(())
    }

    fn instruction(&mut self, mnemonic: &str, ops: &[Operand]) -> Result<(), AsmError> {
        use Opcode::*;
        let line = self.line;
        let reg = |o: &Operand| -> Result<u8, AsmError> {
            match o {
                Operand::Reg(r) => Ok(*r),
                other => err(line, format!("expected register, got {other:?}")),
            }
        };
        let imm32 = |o: &Operand| -> Result<i32, AsmError> {
            match o {
                Operand::Imm(v) => i32::try_from(*v)
                    .map_err(|_| AsmError { line, msg: format!("immediate {v} out of i32 range") }),
                other => err(line, format!("expected immediate, got {other:?}")),
            }
        };
        let want = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                err(line, format!("{mnemonic} expects {n} operands, got {}", ops.len()))
            }
        };

        // Three-register ALU ops.
        let alu3 = [
            ("add", Add),
            ("sub", Sub),
            ("mul", Mul),
            ("divu", Divu),
            ("remu", Remu),
            ("and", And),
            ("or", Or),
            ("xor", Xor),
            ("shl", Shl),
            ("shru", Shru),
            ("shrs", Shrs),
            ("rotl32", Rotl32),
            ("rotr32", Rotr32),
            ("add32", Add32),
            ("sub32", Sub32),
            ("mul32", Mul32),
        ];
        if let Some((_, op)) = alu3.iter().find(|(m, _)| *m == mnemonic) {
            want(3)?;
            let i = Instr::new(*op, reg(&ops[0])?, reg(&ops[1])?, reg(&ops[2])?, 0);
            return self.emit_instr(i);
        }

        // Register-immediate ALU ops.
        let alu_imm = [
            ("addi", Addi),
            ("andi", Andi),
            ("ori", Ori),
            ("xori", Xori),
            ("shli", Shli),
            ("shrui", Shrui),
            ("shrsi", Shrsi),
            ("rotl32i", Rotl32i),
            ("rotr32i", Rotr32i),
            ("add32i", Add32i),
        ];
        if let Some((_, op)) = alu_imm.iter().find(|(m, _)| *m == mnemonic) {
            want(3)?;
            let i = Instr::new(*op, reg(&ops[0])?, reg(&ops[1])?, 0, imm32(&ops[2])?);
            return self.emit_instr(i);
        }

        // Loads/stores.
        let mems = [
            ("ld8u", Ld8u),
            ("ld16u", Ld16u),
            ("ld32u", Ld32u),
            ("ld64", Ld64),
            ("st8", St8),
            ("st16", St16),
            ("st32", St32),
            ("st64", St64),
        ];
        if let Some((_, op)) = mems.iter().find(|(m, _)| *m == mnemonic) {
            want(2)?;
            let val = reg(&ops[0])?;
            let (base, disp) = match &ops[1] {
                Operand::Mem(base, disp) => (*base, *disp),
                other => return err(line, format!("expected [reg+imm], got {other:?}")),
            };
            return self.emit_instr(Instr::new(*op, val, base, 0, disp));
        }

        // Branches.
        let branches = [
            ("beq", Beq),
            ("bne", Bne),
            ("bltu", Bltu),
            ("bgeu", Bgeu),
            ("blts", Blts),
            ("bges", Bges),
        ];
        if let Some((_, op)) = branches.iter().find(|(m, _)| *m == mnemonic) {
            want(3)?;
            let a = reg(&ops[0])?;
            let b = reg(&ops[1])?;
            match &ops[2] {
                Operand::Sym(s) => {
                    let field = self.offset() + 4;
                    self.reloc_here(field, s, RelocKind::Rel32)?;
                    return self.emit_instr(Instr::new(*op, a, b, 0, 0));
                }
                Operand::Imm(v) => {
                    let imm = i32::try_from(*v)
                        .map_err(|_| AsmError { line, msg: "branch offset out of range".into() })?;
                    return self.emit_instr(Instr::new(*op, a, b, 0, imm));
                }
                other => return err(line, format!("expected label, got {other:?}")),
            }
        }

        match mnemonic {
            "mov" => {
                want(2)?;
                let i = Instr::new(Mov, reg(&ops[0])?, reg(&ops[1])?, 0, 0);
                self.emit_instr(i)
            }
            "movi" => {
                want(2)?;
                let i = Instr::new(Movi, reg(&ops[0])?, 0, 0, imm32(&ops[1])?);
                self.emit_instr(i)
            }
            "movhi" => {
                want(2)?;
                let i = Instr::new(Movhi, reg(&ops[0])?, 0, 0, imm32(&ops[1])?);
                self.emit_instr(i)
            }
            "jmp" => {
                want(1)?;
                match &ops[0] {
                    Operand::Sym(s) => {
                        let field = self.offset() + 4;
                        self.reloc_here(field, s, RelocKind::Rel32)?;
                        self.emit_instr(Instr::new(Jmp, 0, 0, 0, 0))
                    }
                    Operand::Imm(v) => self.emit_instr(Instr::new(Jmp, 0, 0, 0, *v as i32)),
                    other => err(line, format!("expected label, got {other:?}")),
                }
            }
            "call" => {
                want(1)?;
                match &ops[0] {
                    Operand::Sym(s) => {
                        let field = self.offset() + 4;
                        self.reloc_here(field, s, RelocKind::Rel32)?;
                        self.emit_instr(Instr::new(Call, 0, 0, 0, 0))
                    }
                    other => err(line, format!("call expects a symbol, got {other:?}")),
                }
            }
            "callr" => {
                want(1)?;
                let r = reg(&ops[0])?;
                self.emit_instr(Instr::new(Callr, 0, r, 0, 0))
            }
            "jmpr" => {
                want(1)?;
                let r = reg(&ops[0])?;
                self.emit_instr(Instr::new(Jmpr, 0, r, 0, 0))
            }
            "ret" => {
                want(0)?;
                self.emit_instr(Instr::new(Ret, 0, 0, 0, 0))
            }
            "ldpc" => {
                want(1)?;
                let i = Instr::new(Ldpc, reg(&ops[0])?, 0, 0, 0);
                self.emit_instr(i)
            }
            "halt" => {
                want(0)?;
                self.emit_instr(Instr::new(Halt, 0, 0, 0, 0))
            }
            "ocall" => {
                want(1)?;
                let i = Instr::new(Ocall, 0, 0, 0, imm32(&ops[0])?);
                self.emit_instr(i)
            }
            "intrin" => {
                want(1)?;
                let i = Instr::new(Intrin, 0, 0, 0, imm32(&ops[0])?);
                self.emit_instr(i)
            }
            // --- pseudo-instructions ---
            "nop" => {
                want(0)?;
                self.emit_instr(Instr::new(Addi, 0, 0, 0, 0))
            }
            "li" => {
                want(2)?;
                let rd = reg(&ops[0])?;
                let v = match &ops[1] {
                    Operand::Imm(v) => *v,
                    other => return err(line, format!("li expects an immediate, got {other:?}")),
                };
                self.emit_instr(Instr::new(Movi, rd, 0, 0, v as i32))?;
                // movi sign-extends; emit movhi when the upper half differs.
                if (v as i32 as i64) != v {
                    self.emit_instr(Instr::new(Movhi, rd, 0, 0, (v as u64 >> 32) as i32))?;
                }
                Ok(())
            }
            "la" => {
                want(2)?;
                let rd = reg(&ops[0])?;
                let sym = match &ops[1] {
                    Operand::Sym(s) => s.clone(),
                    other => return err(line, format!("la expects a symbol, got {other:?}")),
                };
                let field = self.offset() + 4;
                self.reloc_here(field, &sym, RelocKind::AbsLo32)?;
                self.emit_instr(Instr::new(Movi, rd, 0, 0, 0))?;
                let field = self.offset() + 4;
                self.reloc_here(field, &sym, RelocKind::AbsHi32)?;
                self.emit_instr(Instr::new(Movhi, rd, 0, 0, 0))
            }
            "push" => {
                want(1)?;
                let rs = reg(&ops[0])?;
                self.emit_instr(Instr::new(Addi, REG_SP, REG_SP, 0, -8))?;
                self.emit_instr(Instr::new(St64, rs, REG_SP, 0, 0))
            }
            "pop" => {
                want(1)?;
                let rd = reg(&ops[0])?;
                self.emit_instr(Instr::new(Ld64, rd, REG_SP, 0, 0))?;
                self.emit_instr(Instr::new(Addi, REG_SP, REG_SP, 0, 8))
            }
            other => err(line, format!("unknown mnemonic {other:?}")),
        }
    }
}

fn find_label_colon(line: &str) -> Option<usize> {
    // A label is IDENT ':' at line start (no whitespace inside the ident).
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b':' => return if i > 0 { Some(i) } else { None },
            b if (b as char).is_alphanumeric() || b == b'_' || b == b'.' => continue,
            _ => return None,
        }
    }
    None
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().map(|c| c.is_alphabetic() || c == '_' || c == '.').unwrap_or(false)
        && s.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '.')
}

fn split_first_word(s: &str) -> (&str, &str) {
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], &s[i..]),
        None => (s, ""),
    }
}

fn split_commas(s: &str) -> Vec<&str> {
    if s.trim().is_empty() {
        Vec::new()
    } else {
        s.split(',').collect()
    }
}

fn parse_int(s: &str) -> Result<i64, String> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|e| format!("bad integer {s:?}: {e}"))? as i64
    } else if let Some(bin) = body.strip_prefix("0b") {
        u64::from_str_radix(bin, 2).map_err(|e| format!("bad integer {s:?}: {e}"))? as i64
    } else {
        body.parse::<u64>().map_err(|e| format!("bad integer {s:?}: {e}"))? as i64
    };
    Ok(if neg { -v } else { v })
}

fn parse_int_list(s: &str, line: usize) -> Result<Vec<i64>, AsmError> {
    split_commas(s).iter().map(|p| parse_int(p).map_err(|msg| AsmError { line, msg })).collect()
}

fn parse_string(s: &str, line: usize) -> Result<String, AsmError> {
    let s = s.trim();
    if s.len() < 2 || !s.starts_with('"') || !s.ends_with('"') {
        return err(line, format!("expected quoted string, got {s:?}"));
    }
    let inner = &s[1..s.len() - 1];
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('0') => out.push('\0'),
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                other => return err(line, format!("bad escape \\{other:?}")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

fn parse_operands(s: &str, line: usize) -> Result<Vec<Operand>, AsmError> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(Vec::new());
    }
    split_commas(s).iter().map(|p| parse_operand(p.trim(), line)).collect()
}

fn parse_reg(s: &str) -> Option<u8> {
    if s == "sp" {
        return Some(REG_SP);
    }
    let num = s.strip_prefix('r')?;
    let n: u8 = num.parse().ok()?;
    if (n as usize) < crate::isa::NUM_REGS {
        Some(n)
    } else {
        None
    }
}

fn parse_operand(s: &str, line: usize) -> Result<Operand, AsmError> {
    if let Some(r) = parse_reg(s) {
        return Ok(Operand::Reg(r));
    }
    if s.starts_with('[') && s.ends_with(']') {
        let inner = &s[1..s.len() - 1];
        // forms: reg | reg+imm | reg-imm
        let (reg_part, disp) = if let Some(plus) = inner.find('+') {
            (&inner[..plus], parse_int(&inner[plus + 1..]).map_err(|msg| AsmError { line, msg })?)
        } else if let Some(minus) = inner.rfind('-') {
            if minus == 0 {
                return err(line, format!("bad memory operand {s:?}"));
            }
            (
                &inner[..minus],
                -parse_int(&inner[minus + 1..]).map_err(|msg| AsmError { line, msg })?,
            )
        } else {
            (inner, 0)
        };
        let base = parse_reg(reg_part.trim())
            .ok_or_else(|| AsmError { line, msg: format!("bad base register {reg_part:?}") })?;
        let disp = i32::try_from(disp)
            .map_err(|_| AsmError { line, msg: "displacement out of range".into() })?;
        return Ok(Operand::Mem(base, disp));
    }
    if let Ok(v) = parse_int(s) {
        return Ok(Operand::Imm(v));
    }
    if is_ident(s) {
        return Ok(Operand::Sym(s.to_string()));
    }
    err(line, format!("cannot parse operand {s:?}"))
}

/// Convenience: assemble several source files into one vector of objects.
///
/// # Errors
///
/// Returns the first assembly error together with its source index.
pub fn assemble_all<'a>(
    sources: impl IntoIterator<Item = &'a str>,
) -> Result<Vec<Object>, AsmError> {
    sources.into_iter().map(assemble).collect()
}

/// Returns a map of function name → body size for an object, used by tests
/// and by whitelist generation.
pub fn function_sizes(obj: &Object) -> HashMap<String, u64> {
    obj.symbols
        .iter()
        .filter(|s| s.kind == SymKind::Func)
        .map(|s| (s.name.clone(), s.size))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Opcode;

    #[test]
    fn assembles_simple_function() {
        let obj = assemble(
            ".section text\n\
             .global f\n\
             .func f\n\
                 movi r0, 7\n\
                 addi r0, r0, 35\n\
                 ret\n\
             .endfunc\n",
        )
        .unwrap();
        let text = obj.section("text").unwrap();
        assert_eq!(text.bytes.len(), 24);
        let f = obj.symbol("f").unwrap();
        assert_eq!(f.size, 24);
        assert!(f.global);
        assert_eq!(f.kind, SymKind::Func);
    }

    #[test]
    fn local_labels_are_mangled() {
        let obj = assemble(
            ".section text\n\
             .func a\n\
             .loop:\n\
                 jmp .loop\n\
             .endfunc\n\
             .func b\n\
             .loop:\n\
                 jmp .loop\n\
             .endfunc\n",
        )
        .unwrap();
        assert!(obj.symbol("a.loop").is_some());
        assert!(obj.symbol("b.loop").is_some());
        let text = obj.section("text").unwrap();
        assert_eq!(text.relocs.len(), 2);
        assert_eq!(text.relocs[0].symbol, "a.loop");
        assert_eq!(text.relocs[1].symbol, "b.loop");
    }

    #[test]
    fn local_label_outside_function_rejected() {
        let e = assemble(".section text\n.orphan:\n").unwrap_err();
        assert!(e.msg.contains("outside a function"), "{e}");
    }

    #[test]
    fn data_directives() {
        let obj = assemble(
            ".section rodata\n\
             tbl:\n\
                 .byte 1, 2, 0xff\n\
                 .align 4\n\
                 .word 0xdeadbeef\n\
                 .quad 0x1122334455667788\n\
                 .ascii \"hi\"\n\
                 .asciz \"z\"\n\
                 .zero 3\n",
        )
        .unwrap();
        let ro = obj.section("rodata").unwrap();
        assert_eq!(&ro.bytes[..3], &[1, 2, 0xff]);
        assert_eq!(&ro.bytes[4..8], &0xdeadbeefu32.to_le_bytes());
        assert_eq!(&ro.bytes[8..16], &0x1122334455667788u64.to_le_bytes());
        assert_eq!(&ro.bytes[16..18], b"hi");
        assert_eq!(&ro.bytes[18..20], b"z\0");
        assert_eq!(ro.bytes.len(), 23);
        assert_eq!(obj.symbol("tbl").unwrap().kind, SymKind::Object);
    }

    #[test]
    fn quad_symbol_emits_abs64_reloc() {
        let obj = assemble(
            ".section text\n.func f\nret\n.endfunc\n\
             .section rodata\ntable: .quad f\n",
        )
        .unwrap();
        let ro = obj.section("rodata").unwrap();
        assert_eq!(ro.relocs.len(), 1);
        assert_eq!(ro.relocs[0].kind, RelocKind::Abs64);
        assert_eq!(ro.relocs[0].symbol, "f");
    }

    #[test]
    fn la_emits_two_relocs() {
        let obj = assemble(".section text\n.func f\nla r1, f\nret\n.endfunc\n").unwrap();
        let text = obj.section("text").unwrap();
        assert_eq!(text.relocs.len(), 2);
        assert_eq!(text.relocs[0].kind, RelocKind::AbsLo32);
        assert_eq!(text.relocs[1].kind, RelocKind::AbsHi32);
        assert_eq!(text.bytes.len(), 24); // la is 2 instructions + ret
    }

    #[test]
    fn li_expands_by_magnitude() {
        let small = assemble(".section text\n.func f\nli r1, 5\nret\n.endfunc\n").unwrap();
        assert_eq!(small.section("text").unwrap().bytes.len(), 16);
        let big = assemble(".section text\n.func f\nli r1, 0x123456789a\nret\n.endfunc\n").unwrap();
        assert_eq!(big.section("text").unwrap().bytes.len(), 24);
        // Negative i32 range still fits one instruction.
        let neg = assemble(".section text\n.func f\nli r1, -4\nret\n.endfunc\n").unwrap();
        assert_eq!(neg.section("text").unwrap().bytes.len(), 16);
    }

    #[test]
    fn memory_operands() {
        let obj = assemble(
            ".section text\n.func f\n\
             ld64 r1, [r2+16]\n\
             st8 r3, [sp-8]\n\
             ld32u r4, [r5]\n\
             ret\n.endfunc\n",
        )
        .unwrap();
        let text = obj.section("text").unwrap();
        let i0 = Instr::decode(text.bytes[0..8].try_into().unwrap()).unwrap();
        assert_eq!((i0.op, i0.a, i0.b, i0.imm), (Opcode::Ld64, 1, 2, 16));
        let i1 = Instr::decode(text.bytes[8..16].try_into().unwrap()).unwrap();
        assert_eq!((i1.op, i1.a, i1.b, i1.imm), (Opcode::St8, 3, 15, -8));
        let i2 = Instr::decode(text.bytes[16..24].try_into().unwrap()).unwrap();
        assert_eq!((i2.op, i2.a, i2.b, i2.imm), (Opcode::Ld32u, 4, 5, 0));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("movi r0, 1\nbogus r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = assemble(".func f\nret\n").unwrap_err();
        assert!(e.msg.contains("missing .endfunc"));
        let e = assemble(".section what\n").unwrap_err();
        assert!(e.msg.contains("unknown section"));
    }

    #[test]
    fn duplicate_symbol_rejected() {
        let e = assemble(".section text\n.func f\nret\n.endfunc\n.func f\nret\n.endfunc\n")
            .unwrap_err();
        assert!(e.msg.contains("duplicate symbol"));
    }

    #[test]
    fn bss_accepts_only_zero_fill() {
        let obj = assemble(".section bss\nbuf: .zero 128\n.align 64\n").unwrap();
        let bss = obj.section("bss").unwrap();
        assert_eq!(bss.size, 128); // already 64-aligned
        assert!(bss.bytes.is_empty());
        let e = assemble(".section bss\n.byte 1\n").unwrap_err();
        assert!(e.msg.contains("bss"));
    }

    #[test]
    fn comments_and_strings() {
        let obj =
            assemble(".section rodata\nmsg: .ascii \"a;b#c\" ; trailing comment\n# full line\n")
                .unwrap();
        assert_eq!(obj.section("rodata").unwrap().bytes, b"a;b#c");
    }

    #[test]
    fn assembler_never_panics_on_arbitrary_lines() {
        // Deterministic fuzz: random printable-ish lines, plus mutations of
        // valid directive/mnemonic fragments to reach deeper parse paths.
        let mut state = 0xA5E_0001u64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        const FRAGMENTS: [&str; 10] = [
            ".section text",
            ".func f",
            ".endfunc",
            ".byte",
            ".word",
            ".ascii \"x\"",
            "mov r1,",
            "ldi r0, 5",
            "label:",
            "ret",
        ];
        for _ in 0..256 {
            let n_lines = next(12);
            let mut lines = Vec::new();
            for _ in 0..n_lines {
                if next(2) == 0 {
                    // Arbitrary bytes in the printable range plus tabs/punct.
                    let len = next(41) as usize;
                    let line: String =
                        (0..len).map(|_| (0x20 + next(0x5F) as u8) as char).collect();
                    lines.push(line);
                } else {
                    // A valid-ish fragment with a random suffix chopped off.
                    let frag = FRAGMENTS[next(FRAGMENTS.len() as u64) as usize];
                    let cut = next(frag.len() as u64 + 1) as usize;
                    lines.push(frag[..cut].to_string());
                }
            }
            let src = lines.join("\n");
            let _ = assemble(&src); // must never panic
        }
    }

    #[test]
    fn push_pop_expand() {
        let obj = assemble(".section text\n.func f\npush r1\npop r2\nret\n.endfunc\n").unwrap();
        assert_eq!(obj.section("text").unwrap().bytes.len(), 40);
    }
}
