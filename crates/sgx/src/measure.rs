//! The MRENCLAVE measurement chain.
//!
//! Mirrors the architectural protocol: `ECREATE` starts the hash, each
//! `EADD` absorbs the page's offset and security attributes, and each
//! `EEXTEND` absorbs one 256-byte chunk of page content (so a full page
//! takes 16 `EEXTEND`s, as the paper's background section describes).
//! `EINIT` freezes the hash; the result is MRENCLAVE.

use crate::epc::{PagePerms, PageType};
use elide_crypto::sha2::Sha256;

/// Size of one `EEXTEND` measurement chunk.
pub const EEXTEND_CHUNK: usize = 256;

/// Incremental measurement state.
#[derive(Debug, Clone)]
pub struct Measurement {
    hasher: Sha256,
    extend_count: u64,
}

impl Measurement {
    /// Starts a measurement for an enclave of `size` bytes (`ECREATE`).
    pub fn ecreate(size: u64) -> Self {
        let mut hasher = Sha256::new();
        hasher.update(b"ECREATE\0");
        hasher.update(&size.to_le_bytes());
        Measurement { hasher, extend_count: 0 }
    }

    /// Absorbs an `EADD` record: page offset within the enclave plus its
    /// immutable security attributes.
    pub fn eadd(&mut self, page_offset: u64, perms: PagePerms, ptype: PageType) {
        self.hasher.update(b"EADD\0\0\0\0");
        self.hasher.update(&page_offset.to_le_bytes());
        self.hasher.update(&[perms.bits(), ptype as u8]);
    }

    /// Absorbs one 256-byte `EEXTEND` chunk at `offset` within the enclave.
    ///
    /// The chunk is borrowed — callers hand page memory in directly (e.g.
    /// via [`crate::enclave::Enclave::page_slice`]) with no staging copy,
    /// and the fixed-size reference makes the 256-byte contract a
    /// compile-time fact instead of a runtime assert.
    pub fn eextend(&mut self, offset: u64, chunk: &[u8; EEXTEND_CHUNK]) {
        self.hasher.update(b"EEXTEND\0");
        self.hasher.update(&offset.to_le_bytes());
        self.hasher.update(chunk);
        self.extend_count += 1;
    }

    /// Number of `EEXTEND`s performed (16 per fully-measured page).
    pub fn extend_count(&self) -> u64 {
        self.extend_count
    }

    /// Freezes the measurement (`EINIT`), producing MRENCLAVE.
    pub fn finalize(self) -> [u8; 32] {
        self.hasher.finalize()
    }

    /// Returns MRENCLAVE without consuming the state (used to compare what
    /// a signing tool computed against what the hardware will compute).
    pub fn current(&self) -> [u8; 32] {
        self.hasher.clone().finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epc::{PagePerms, PageType};

    fn measure_pages(pages: &[(u64, [u8; 4096])]) -> [u8; 32] {
        let mut m = Measurement::ecreate(0x10000);
        for (off, data) in pages {
            m.eadd(*off, PagePerms::RX, PageType::Reg);
            for (i, chunk) in data.chunks_exact(EEXTEND_CHUNK).enumerate() {
                m.eextend(off + (i * EEXTEND_CHUNK) as u64, chunk.try_into().unwrap());
            }
        }
        m.finalize()
    }

    #[test]
    fn deterministic() {
        let pages = [(0u64, [7u8; 4096])];
        assert_eq!(measure_pages(&pages), measure_pages(&pages));
    }

    #[test]
    fn content_changes_measurement() {
        let a = measure_pages(&[(0, [1u8; 4096])]);
        let b = measure_pages(&[(0, [2u8; 4096])]);
        assert_ne!(a, b);
    }

    #[test]
    fn offset_changes_measurement() {
        let a = measure_pages(&[(0, [1u8; 4096])]);
        let b = measure_pages(&[(4096, [1u8; 4096])]);
        assert_ne!(a, b);
    }

    #[test]
    fn perms_change_measurement() {
        let mut a = Measurement::ecreate(4096);
        a.eadd(0, PagePerms::RX, PageType::Reg);
        let mut b = Measurement::ecreate(4096);
        b.eadd(0, PagePerms::RWX, PageType::Reg);
        assert_ne!(a.finalize(), b.finalize());
    }

    #[test]
    fn sixteen_extends_per_page() {
        let mut m = Measurement::ecreate(4096);
        m.eadd(0, PagePerms::RX, PageType::Reg);
        for i in 0..16 {
            m.eextend(i * 256, &[0u8; 256]);
        }
        assert_eq!(m.extend_count(), 16);
    }
}
