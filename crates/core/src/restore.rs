//! The untrusted half of the Runtime Restorer: the `elide_server_request`,
//! `elide_read_file` and `elide_write_file` ocalls (§3.4: "the ocalls are
//! automatically called by our library"), plus the host-side helper that
//! invokes the `elide_restore` ecall.

use crate::elide_asm::{request, OCALL_READ_FILE, OCALL_SERVER_REQUEST, OCALL_WRITE_FILE};
use crate::error::ElideError;
use crate::protocol::Transport;
use elide_enclave::runtime::EnclaveRuntime;
use sgx_sim::quote::QuotingEnclave;
use sgx_sim::report::Report;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Shared, persistent store for the sealed blob (stands in for the file the
/// paper's step ❼ writes to disk; persists across enclave launches).
pub type SealedStore = Arc<Mutex<Option<Vec<u8>>>>;

/// Side-channel for the *underlying* host error behind a restore failure.
///
/// The ocall ABI can only hand the guest `-1`, which the guest folds into a
/// coarse restore status — losing whether the failure was a timeout, an
/// authentication rejection, or a server-side fault. The ocalls record the
/// last host-side error here so [`elide_restore_diag`] can surface it.
pub type ErrorSink = Arc<Mutex<Option<ElideError>>>;

fn record(sink: &ErrorSink, err: ElideError) {
    *sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(err);
}

fn take(sink: &ErrorSink) -> Option<ElideError> {
    sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take()
}

/// Creates an empty sealed store.
pub fn new_sealed_store() -> SealedStore {
    Arc::new(Mutex::new(None))
}

/// Host-side files available to the enclave's ocalls.
#[derive(Debug, Clone)]
pub struct ElideFiles {
    /// `enclave.secret.data` shipped next to the enclave (local mode).
    pub data_file: Option<Vec<u8>>,
    /// The sealed blob store.
    pub sealed: SealedStore,
}

impl ElideFiles {
    /// Files for remote mode: no local data, fresh sealed store.
    pub fn remote() -> Self {
        ElideFiles { data_file: None, sealed: new_sealed_store() }
    }

    /// Files for local mode.
    pub fn local(data_file: Vec<u8>) -> Self {
        ElideFiles { data_file: Some(data_file), sealed: new_sealed_store() }
    }
}

/// Where a routed restore's server requests go: the origin authentication
/// server, plus (optionally) a local delegate enclave's peer transport.
#[derive(Clone)]
pub struct RestoreRoute {
    /// The origin server (always required — delegate failures fall back).
    pub origin: Arc<Mutex<dyn Transport + Send>>,
    /// A local delegate, spoken to with `PEER_ATTEST`-style payloads when
    /// the delegation switch is armed.
    pub delegate: Option<Arc<Mutex<dyn Transport + Send>>>,
}

impl std::fmt::Debug for RestoreRoute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RestoreRoute").field("delegate", &self.delegate.is_some()).finish()
    }
}

impl RestoreRoute {
    /// A route with no delegate: every request goes to the origin.
    pub fn origin_only(origin: Arc<Mutex<dyn Transport + Send>>) -> Self {
        RestoreRoute { origin, delegate: None }
    }
}

/// Arms/disarms delegated provisioning on a routed runtime: while armed
/// (and a delegate is routed), the guest's `HANDSHAKE` ocall is forwarded
/// to the delegate as a peer attestation instead of being quoted to the
/// origin. [`crate::api::LaunchedApp::restore_delegated`] arms it around
/// the targeted restore ecall.
pub type DelegationSwitch = Arc<AtomicBool>;

/// Installs the three SgxElide ocalls into an enclave runtime.
///
/// The `elide_server_request` handler additionally converts the enclave's
/// local-attestation report into a quote via the platform quoting enclave
/// before forwarding the handshake — the host-side leg of remote
/// attestation.
///
/// Returns an [`ErrorSink`] that captures the underlying host-side error
/// whenever `elide_server_request` fails (the guest itself only sees `-1`).
pub fn install_elide_ocalls(
    rt: &mut EnclaveRuntime,
    transport: Arc<Mutex<dyn Transport + Send>>,
    qe: Arc<QuotingEnclave>,
    files: ElideFiles,
) -> ErrorSink {
    install_elide_ocalls_routed(rt, RestoreRoute::origin_only(transport), qe, files).0
}

/// [`install_elide_ocalls`] with delegate routing.
///
/// While the returned [`DelegationSwitch`] is armed and the route has a
/// delegate, the guest's `HANDSHAKE` — whose payload is the raw
/// `[report 160][dh_pub]`, with the report targeted at the *delegate's*
/// MRENCLAVE by the targeted restore ecall — is forwarded to the delegate
/// verbatim (such a report cannot be quoted: the quoting enclave refuses
/// reports not targeted at itself). Follow-up requests of the same restore
/// stay on the delegate. Disarmed, the classic quote-to-origin path runs
/// unchanged, so one runtime can fall back without relaunching.
pub fn install_elide_ocalls_routed(
    rt: &mut EnclaveRuntime,
    route: RestoreRoute,
    qe: Arc<QuotingEnclave>,
    files: ElideFiles,
) -> (ErrorSink, DelegationSwitch) {
    let sink: ErrorSink = Arc::new(Mutex::new(None));
    let armed: DelegationSwitch = Arc::new(AtomicBool::new(false));

    // --- elide_server_request ---
    let origin = Arc::clone(&route.origin);
    let delegate = route.delegate.clone();
    let armed_flag = Arc::clone(&armed);
    let errors = Arc::clone(&sink);
    // True between a delegate-served handshake and the next handshake (or
    // a disarm): the guest's follow-up META/DATA belong to the delegate's
    // channel, not the origin's.
    let mut delegate_session = false;
    rt.register_ocall(
        OCALL_SERVER_REQUEST,
        Box::new(move |regs, mem| {
            let req = regs[1] as u8;
            let in_ptr = regs[2];
            let in_len = regs[3] as usize;
            let out_ptr = regs[4];
            let out_cap = regs[5] as usize;
            let use_delegate = delegate.is_some() && armed_flag.load(Ordering::SeqCst);
            if req as u64 == request::HANDSHAKE {
                delegate_session = false;
            }
            let result = (|| -> Result<Vec<u8>, ElideError> {
                let payload = if in_len > 0 { mem.read(in_ptr, in_len)? } else { Vec::new() };
                if req as u64 == request::HANDSHAKE {
                    if payload.len() <= Report::SERIALIZED_LEN {
                        return Err(ElideError::Transport("handshake payload too short".into()));
                    }
                    if use_delegate {
                        // The report targets the delegate, not the quoting
                        // enclave: forward it raw as a peer attestation.
                        let delegate = delegate.as_ref().expect("use_delegate checked");
                        let body = delegate
                            .lock()
                            .expect("delegate transport mutex")
                            .request(request::PEER_ATTEST as u8, &payload)?;
                        delegate_session = true;
                        return Ok(body);
                    }
                    let report = Report::from_bytes(&payload[..Report::SERIALIZED_LEN])
                        .ok_or_else(|| ElideError::Transport("bad report".into()))?;
                    let quote = qe
                        .quote(&report)
                        .map_err(|e| ElideError::Transport(format!("quoting failed: {e}")))?;
                    let quote_bytes = quote.to_bytes();
                    let quote_len = u32::try_from(quote_bytes.len())
                        .map_err(|_| ElideError::Transport("quote too large for frame".into()))?;
                    let mut fwd = Vec::with_capacity(4 + quote_bytes.len() + payload.len() - 160);
                    fwd.extend_from_slice(&quote_len.to_le_bytes());
                    fwd.extend_from_slice(&quote_bytes);
                    fwd.extend_from_slice(&payload[Report::SERIALIZED_LEN..]);
                    origin.lock().expect("transport mutex").request(req, &fwd)
                } else if delegate_session && use_delegate {
                    let delegate = delegate.as_ref().expect("use_delegate checked");
                    delegate.lock().expect("delegate transport mutex").request(req, &payload)
                } else {
                    origin.lock().expect("transport mutex").request(req, &payload)
                }
            })();
            match result {
                Ok(body) if body.len() <= out_cap => {
                    mem.write(out_ptr, &body)?;
                    regs[0] = body.len() as u64;
                }
                // Failures surface to the guest as -1; it maps them to its
                // own status codes (network errors are the developer's to
                // handle, §3.4). The real error is kept for the host.
                Ok(body) => {
                    record(
                        &errors,
                        ElideError::Transport(format!(
                            "server response of {} bytes exceeds the guest's {out_cap}-byte buffer",
                            body.len()
                        )),
                    );
                    regs[0] = u64::MAX;
                }
                Err(e) => {
                    record(&errors, e);
                    regs[0] = u64::MAX;
                }
            }
            Ok(())
        }),
    );

    // --- elide_read_file ---
    let data_file = files.data_file.clone();
    let sealed = Arc::clone(&files.sealed);
    rt.register_ocall(
        OCALL_READ_FILE,
        Box::new(move |regs, mem| {
            let out_ptr = regs[4];
            let out_cap = regs[5] as usize;
            let contents: Option<Vec<u8>> = match regs[1] {
                0 => data_file.clone(),
                1 => sealed.lock().expect("sealed store").clone(),
                _ => None,
            };
            match contents {
                Some(bytes) if bytes.len() <= out_cap => {
                    mem.write(out_ptr, &bytes)?;
                    regs[0] = bytes.len() as u64;
                }
                _ => regs[0] = u64::MAX,
            }
            Ok(())
        }),
    );

    // --- elide_write_file ---
    let sealed = Arc::clone(&files.sealed);
    rt.register_ocall(
        OCALL_WRITE_FILE,
        Box::new(move |regs, mem| {
            if regs[1] == 1 {
                let bytes = mem.read(regs[2], regs[3] as usize)?;
                *sealed.lock().expect("sealed store") = Some(bytes);
                regs[0] = 0;
            } else {
                regs[0] = u64::MAX;
            }
            Ok(())
        }),
    );

    (sink, armed)
}

/// Statistics from one restoration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreStats {
    /// Instructions the enclave retired during `elide_restore`.
    pub instructions: u64,
}

/// Client-side retry policy: connect attempts and restore re-runs back
/// off exponentially (each delay doubles, capped at `max_delay`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub retries: u32,
    /// Delay before the first retry.
    pub initial_delay: std::time::Duration,
    /// Upper bound on any single delay.
    pub max_delay: std::time::Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 3,
            initial_delay: std::time::Duration::from_millis(50),
            max_delay: std::time::Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy { retries: 0, ..Default::default() }
    }

    /// The backoff delays, one per retry.
    pub fn delays(&self) -> Vec<std::time::Duration> {
        crate::protocol::backoff_series(self.initial_delay, self.max_delay, self.retries)
    }
}

/// Invokes the `elide_restore` ecall (the single call a developer adds,
/// §3.4) and maps its status to an error.
///
/// # Errors
///
/// * [`ElideError::RestoreFailed`] — the enclave reported a failure status
///   (see [`crate::elide_asm::restore_status`]).
/// * [`ElideError::Enclave`] — the ecall itself faulted.
pub fn elide_restore(
    rt: &mut EnclaveRuntime,
    restore_ecall_index: u64,
) -> Result<RestoreStats, ElideError> {
    elide_restore_input(rt, restore_ecall_index, &[])
}

/// [`elide_restore`] with a 32-byte target MRENCLAVE as the ecall input:
/// the guest attests to *that* enclave (a local delegate) instead of the
/// quoting enclave, enabling delegated provisioning. With an empty input
/// the guest takes the classic quoting-enclave path.
///
/// # Errors
///
/// See [`elide_restore`].
pub fn elide_restore_targeted(
    rt: &mut EnclaveRuntime,
    restore_ecall_index: u64,
    target_mrenclave: &[u8; 32],
) -> Result<RestoreStats, ElideError> {
    elide_restore_input(rt, restore_ecall_index, target_mrenclave)
}

fn elide_restore_input(
    rt: &mut EnclaveRuntime,
    restore_ecall_index: u64,
    input: &[u8],
) -> Result<RestoreStats, ElideError> {
    let result = rt.ecall(restore_ecall_index, input, 0)?;
    if result.status != crate::elide_asm::restore_status::OK {
        return Err(ElideError::RestoreFailed { status: result.status });
    }
    Ok(RestoreStats { instructions: result.instructions })
}

/// [`elide_restore`], but when the restore status is a coarse failure code
/// and the ocalls recorded the underlying host-side error in `sink`, that
/// underlying error is returned instead of the bare status.
///
/// # Errors
///
/// See [`elide_restore`]; additionally surfaces recorded
/// [`ElideError::Transport`] / [`ElideError::Server`] causes.
pub fn elide_restore_diag(
    rt: &mut EnclaveRuntime,
    restore_ecall_index: u64,
    sink: &ErrorSink,
) -> Result<RestoreStats, ElideError> {
    let _ = take(sink); // clear stale errors from a previous attempt
    match elide_restore(rt, restore_ecall_index) {
        Ok(stats) => Ok(stats),
        Err(status_err) => Err(take(sink).unwrap_or(status_err)),
    }
}

/// [`elide_restore_targeted`] with the same error-sink upgrade as
/// [`elide_restore_diag`].
///
/// # Errors
///
/// See [`elide_restore_diag`].
pub fn elide_restore_targeted_diag(
    rt: &mut EnclaveRuntime,
    restore_ecall_index: u64,
    target_mrenclave: &[u8; 32],
    sink: &ErrorSink,
) -> Result<RestoreStats, ElideError> {
    let _ = take(sink);
    match elide_restore_targeted(rt, restore_ecall_index, target_mrenclave) {
        Ok(stats) => Ok(stats),
        Err(status_err) => Err(take(sink).unwrap_or(status_err)),
    }
}

/// True when `err` is a failure a healthy server could later satisfy, so a
/// client retry is worthwhile. Authentication rejections
/// ([`ServerError::AttestationFailed`] / [`ServerError::WrongEnclave`] /
/// [`ServerError::BadBinding`]) are permanent: retrying would re-present
/// the same identity and fail the same way.
///
/// [`ServerError::AttestationFailed`]: crate::error::ServerError::AttestationFailed
/// [`ServerError::WrongEnclave`]: crate::error::ServerError::WrongEnclave
/// [`ServerError::BadBinding`]: crate::error::ServerError::BadBinding
pub fn is_transient(err: &ElideError) -> bool {
    use crate::elide_asm::restore_status;
    use crate::error::ServerError;
    match err {
        // Network trouble: the next attempt may reconnect.
        ElideError::Transport(_) => true,
        // Server-side internal fault (e.g. store I/O): explicitly retryable.
        // NoSession is transient too — a reconnect mid-restore lands the
        // next request on a fresh, unestablished session, and the retry's
        // re-handshake repairs that.
        ElideError::Server(ServerError::Internal | ServerError::NoSession) => true,
        ElideError::Server(_) => false,
        // Coarse guest statuses with no recorded cause: same set as before.
        ElideError::RestoreFailed {
            status:
                restore_status::HANDSHAKE_FAILED
                | restore_status::META_FAILED
                | restore_status::DATA_FAILED,
        } => true,
        _ => false,
    }
}

fn restore_with_retry_inner(
    rt: &mut EnclaveRuntime,
    restore_ecall_index: u64,
    policy: &RetryPolicy,
    sink: Option<&ErrorSink>,
) -> Result<RestoreStats, ElideError> {
    let attempt = |rt: &mut EnclaveRuntime| match sink {
        Some(sink) => elide_restore_diag(rt, restore_ecall_index, sink),
        None => elide_restore(rt, restore_ecall_index),
    };
    let mut last;
    match attempt(rt) {
        Ok(stats) => return Ok(stats),
        Err(e) => last = e,
    }
    for delay in policy.delays() {
        if !is_transient(&last) {
            return Err(last);
        }
        std::thread::sleep(delay);
        match attempt(rt) {
            Ok(stats) => return Ok(stats),
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// [`elide_restore`] with retries: transient failures (a server still
/// starting, a dropped connection mid-handshake) surface as restore
/// statuses, and each retry re-runs the full handshake after an
/// exponential backoff. Non-transient errors (e.g. a bad server key or an
/// attestation rejection) fail immediately; see [`is_transient`].
///
/// # Errors
///
/// The last error once retries are exhausted; see [`elide_restore`].
pub fn elide_restore_with_retry(
    rt: &mut EnclaveRuntime,
    restore_ecall_index: u64,
    policy: &RetryPolicy,
) -> Result<RestoreStats, ElideError> {
    restore_with_retry_inner(rt, restore_ecall_index, policy, None)
}

/// [`elide_restore_with_retry`] with an [`ErrorSink`]: every attempt reads
/// the recorded underlying error, so transience is judged on (and the final
/// error reports) the real cause, not the guest's coarse status.
///
/// # Errors
///
/// The last *underlying* error once retries are exhausted.
pub fn elide_restore_with_retry_diag(
    rt: &mut EnclaveRuntime,
    restore_ecall_index: u64,
    policy: &RetryPolicy,
    sink: &ErrorSink,
) -> Result<RestoreStats, ElideError> {
    restore_with_retry_inner(rt, restore_ecall_index, policy, Some(sink))
}
