//! # elide-bench
//!
//! Measurement helpers shared by the paper-table binaries (`table1`,
//! `table2`, `figures`) and the Criterion benches. Each table/figure of the
//! SgxElide paper maps to one entry point here; see `EXPERIMENTS.md` at the
//! repository root for the index.

#![forbid(unsafe_code)]
use elide_apps::harness::{launch_protected, App};
use elide_apps::run_workload;
use elide_core::sanitizer::{sanitize, DataPlacement};
use elide_core::whitelist::Whitelist;
use elide_crypto::rng::SeededRandom;
use elide_elf::ElfFile;
use std::time::Instant;

/// Mean and standard deviation of a sample, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Sample mean (ms).
    pub mean_ms: f64,
    /// Sample standard deviation (ms).
    pub std_ms: f64,
}

/// Computes mean/stddev over raw samples in seconds.
pub fn stats(samples: &[f64]) -> Stats {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    Stats { mean_ms: mean * 1e3, std_ms: var.sqrt() * 1e3 }
}

/// Times `f` over `runs` executions, returning per-run seconds.
pub fn time_runs<F: FnMut()>(runs: usize, mut f: F) -> Vec<f64> {
    let mut out = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t0 = Instant::now();
        f();
        out.push(t0.elapsed().as_secs_f64());
    }
    out
}

/// One row of Table 1 (static size characteristics).
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Guest assembly lines (the "TC LOC" analog).
    pub asm_loc: usize,
    /// Function symbols in the trusted component.
    pub tc_functions: usize,
    /// Text-section bytes.
    pub tc_bytes: u64,
    /// Functions the sanitizer redacted.
    pub sanitized_functions: usize,
    /// Bytes the sanitizer redacted.
    pub sanitized_bytes: u64,
}

/// Computes a Table 1 row for one benchmark.
///
/// # Panics
///
/// Panics if the build or sanitization pipeline fails (benchmark harness
/// context).
pub fn table1_row(app: &App, whitelist: &Whitelist) -> Table1Row {
    let image = app.build_elide_image().expect("build");
    let elf = ElfFile::parse(image.clone()).expect("parse");
    let tc_functions = elf.function_symbols().count();
    let tc_bytes = elf.section_by_name(".text").expect(".text").sh_size;
    let mut rng = SeededRandom::new(0xBE7C);
    let out = sanitize(&image, whitelist, DataPlacement::Remote, &mut rng).expect("sanitize");
    Table1Row {
        name: app.name,
        asm_loc: app.asm.lines().filter(|l| !l.trim().is_empty()).count(),
        tc_functions,
        tc_bytes,
        sanitized_functions: out.sanitized_functions.len(),
        sanitized_bytes: out.sanitized_functions.iter().map(|(_, s)| s).sum(),
    }
}

/// Measures sanitize time over `runs` (Table 2, "Sanitize Time").
///
/// # Panics
///
/// Panics if the pipeline fails.
pub fn sanitize_times(app: &App, placement: DataPlacement, runs: usize) -> Stats {
    let image = app.build_elide_image().expect("build");
    let whitelist = Whitelist::from_dummy_enclave().expect("whitelist");
    let mut rng = SeededRandom::new(7);
    let samples = time_runs(runs, || {
        let out = sanitize(&image, &whitelist, placement, &mut rng).expect("sanitize");
        std::hint::black_box(out.image.len());
    });
    stats(&samples)
}

/// Measures restore time over `runs` fresh launches (Table 2, "Restore
/// Time"). Each run launches a new sanitized enclave (fresh sealed store)
/// and times only the `elide_restore` call.
///
/// # Panics
///
/// Panics if the pipeline fails.
pub fn restore_times(app: &App, placement: DataPlacement, runs: usize) -> Stats {
    let mut samples = Vec::with_capacity(runs);
    for run in 0..runs {
        let mut p = launch_protected(app, placement, 1000 + run as u64).expect("launch");
        let t0 = Instant::now();
        p.restore().expect("restore");
        samples.push(t0.elapsed().as_secs_f64());
    }
    stats(&samples)
}

/// A plain build prepared offline (image built and signed once); only the
/// runtime — load, `EINIT`, workload — is timed, matching the paper's
/// methodology (`time ./app` on a pre-built binary).
pub struct PreparedPlain {
    app: App,
    image: Vec<u8>,
    sigstruct: sgx_sim::sigstruct::SigStruct,
    cpu: sgx_sim::SgxCpu,
    indices: std::collections::HashMap<String, u64>,
}

/// Builds and signs the plain configuration once.
///
/// # Panics
///
/// Panics if the build pipeline fails.
pub fn prepare_plain(app: &App) -> PreparedPlain {
    use elide_crypto::rsa::RsaKeyPair;
    let image = app.build_plain_image().expect("build");
    let mut rng = SeededRandom::new(0xF1);
    let cpu = sgx_sim::SgxCpu::new(&mut rng);
    let vendor = RsaKeyPair::generate(512, &mut rng);
    let sigstruct = elide_enclave::loader::sign_enclave(&image, &vendor, 1, 1).expect("sign");
    PreparedPlain { app: app.clone(), image, sigstruct, cpu, indices: app.plain_indices() }
}

impl PreparedPlain {
    /// One timed run: enclave creation + `reps` workload iterations.
    ///
    /// # Panics
    ///
    /// Panics if the run fails.
    pub fn run_seconds(&self, seed: u64, reps: usize) -> f64 {
        let t0 = Instant::now();
        let loaded = elide_enclave::loader::load_enclave(&self.cpu, &self.image, &self.sigstruct)
            .expect("load");
        let mut rt = elide_enclave::runtime::EnclaveRuntime::with_rng(
            loaded,
            Box::new(SeededRandom::new(seed)),
        );
        for _ in 0..reps {
            std::hint::black_box(run_workload(self.app.name, &mut rt, &self.indices));
        }
        t0.elapsed().as_secs_f64()
    }
}

/// A protected build prepared offline: sanitized + signed package, platform
/// and server stood up once. Timed runs cover load, `elide_restore`, and
/// the workload.
pub struct PreparedElide {
    app: App,
    package: elide_core::api::ProtectedPackage,
    platform: elide_core::api::Platform,
    server: std::sync::Arc<elide_core::server::AuthServer>,
    indices: std::collections::HashMap<String, u64>,
}

/// Builds, protects, and stands up the server once.
///
/// # Panics
///
/// Panics if the pipeline fails.
pub fn prepare_elide(app: &App, placement: DataPlacement) -> PreparedElide {
    use elide_core::api::{protect, Mode, Platform};
    use elide_crypto::rsa::RsaKeyPair;
    use sgx_sim::quote::AttestationService;
    let image = app.build_elide_image().expect("build");
    let mut rng = SeededRandom::new(0xF2);
    let vendor = RsaKeyPair::generate(512, &mut rng);
    let package = protect(&image, &vendor, &Mode::Whitelist, placement, &mut rng).expect("protect");
    let mut ias = AttestationService::new();
    let platform = Platform::provision(&mut rng, &mut ias);
    let server = std::sync::Arc::new(package.make_server(ias));
    PreparedElide { app: app.clone(), package, platform, server, indices: app.protected_indices() }
}

impl PreparedElide {
    /// One timed run: enclave creation + restore + `reps` workload
    /// iterations, with a fresh sealed store (first-launch behaviour).
    ///
    /// # Panics
    ///
    /// Panics if the run fails.
    pub fn run_seconds(&self, seed: u64, reps: usize) -> f64 {
        use elide_core::protocol::InProcessTransport;
        use elide_core::restore::new_sealed_store;
        let t0 = Instant::now();
        let transport = std::sync::Arc::new(std::sync::Mutex::new(InProcessTransport::new(
            std::sync::Arc::clone(&self.server),
        )));
        let mut launched = self
            .package
            .launch(&self.platform, transport, new_sealed_store(), seed)
            .expect("launch");
        launched.restore(self.indices["elide_restore"]).expect("restore");
        for _ in 0..reps {
            std::hint::black_box(run_workload(self.app.name, &mut launched.runtime, &self.indices));
        }
        t0.elapsed().as_secs_f64()
    }
}

/// The five non-game benchmarks measured in Figures 3 and 4 (the games
/// "run forever" in the paper and are excluded there too).
pub fn figure_apps() -> Vec<App> {
    use elide_apps::*;
    vec![aes_app::app(), des_app::app(), sha1_app::app(), shas_app::app(), crackme::app()]
}

/// One measured configuration of a throughput bench: how many guest
/// instructions retired in how many seconds.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark app name.
    pub name: String,
    /// Build configuration (`"plain"` / `"elide"`).
    pub build: &'static str,
    /// Guest instructions retired over the timed region.
    pub instructions: u64,
    /// Wall-clock seconds of the timed region.
    pub seconds: f64,
}

impl BenchRecord {
    /// Millions of guest instructions per second.
    pub fn mips(&self) -> f64 {
        self.instructions as f64 / self.seconds / 1e6
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Renders bench records as a machine-readable JSON document (hand-rolled:
/// the workspace deliberately has no third-party dependencies).
pub fn bench_records_json(bench: &str, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(bench)));
    out.push_str("  \"unit\": \"instructions_per_second\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"build\": \"{}\", \"instructions\": {}, \"seconds\": {:.6}, \"mips\": {:.3}}}{}\n",
            json_escape(&r.name),
            json_escape(r.build),
            r.instructions,
            r.seconds,
            r.mips(),
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The workspace root, resolved at compile time. Bench binaries run with
/// the package directory (`crates/bench`) as their working directory, which
/// is gitignored; persisted `BENCH_*.json` files belong at the repo root so
/// the perf trajectory stays tracked across PRs.
pub fn workspace_root() -> &'static std::path::Path {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the workspace root")
}

/// Writes `BENCH_<bench>.json` at the workspace root and returns its path,
/// for git tracking and CI artifact upload.
///
/// # Errors
///
/// Propagates the underlying file-write error.
pub fn write_bench_json(
    bench: &str,
    records: &[BenchRecord],
) -> std::io::Result<std::path::PathBuf> {
    let path = workspace_root().join(format!("BENCH_{bench}.json"));
    std::fs::write(&path, bench_records_json(bench, records))?;
    Ok(path)
}

/// One measured crypto kernel: `bytes` processed per iteration, `iters`
/// iterations over `seconds` of wall clock.
#[derive(Debug, Clone)]
pub struct KernelRecord {
    /// Kernel name (e.g. `"aes_gcm_seal"`).
    pub name: String,
    /// Bytes processed per iteration (0 for pure op-rate kernels).
    pub bytes: u64,
    /// Iterations in the timed region.
    pub iters: u64,
    /// Wall-clock seconds of the timed region.
    pub seconds: f64,
}

impl KernelRecord {
    /// Megabytes per second (0 when the kernel is op-rate only).
    pub fn mb_per_s(&self) -> f64 {
        (self.bytes * self.iters) as f64 / self.seconds / 1e6
    }

    /// Iterations per second.
    pub fn ops_per_s(&self) -> f64 {
        self.iters as f64 / self.seconds
    }
}

/// Renders kernel throughput records as JSON.
pub fn kernel_records_json(bench: &str, records: &[KernelRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(bench)));
    out.push_str("  \"unit\": \"mb_per_s\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"bytes\": {}, \"iters\": {}, \"seconds\": {:.6}, \
             \"mb_per_s\": {:.3}, \"ops_per_s\": {:.3}}}{}\n",
            json_escape(&r.name),
            r.bytes,
            r.iters,
            r.seconds,
            r.mb_per_s(),
            r.ops_per_s(),
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `BENCH_<bench>.json` (kernel schema) at the workspace root.
///
/// # Errors
///
/// Propagates the underlying file-write error.
pub fn write_kernel_json(
    bench: &str,
    records: &[KernelRecord],
) -> std::io::Result<std::path::PathBuf> {
    let path = workspace_root().join(format!("BENCH_{bench}.json"));
    std::fs::write(&path, kernel_records_json(bench, records))?;
    Ok(path)
}

/// One measured launch configuration: wall-clock latency of the full
/// ECREATE→EADD/EEXTEND→EINIT(→provision→restore) cycle.
#[derive(Debug, Clone)]
pub struct LatencyRecord {
    /// Benchmark app name.
    pub name: String,
    /// Build configuration (`"plain"` / `"elide"`).
    pub build: &'static str,
    /// Number of timed launches.
    pub runs: usize,
    /// Per-run latencies in seconds.
    pub samples: Vec<f64>,
}

impl LatencyRecord {
    /// Mean/stddev of the samples.
    pub fn stats(&self) -> Stats {
        stats(&self.samples)
    }

    /// Fastest sample, in milliseconds.
    pub fn min_ms(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min) * 1e3
    }

    /// Slowest sample, in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max) * 1e3
    }
}

/// Renders launch-latency records as JSON.
pub fn latency_records_json(bench: &str, records: &[LatencyRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(bench)));
    out.push_str("  \"unit\": \"ms\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let s = r.stats();
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"build\": \"{}\", \"runs\": {}, \"mean_ms\": {:.3}, \
             \"std_ms\": {:.3}, \"min_ms\": {:.3}, \"max_ms\": {:.3}}}{}\n",
            json_escape(&r.name),
            json_escape(r.build),
            r.runs,
            s.mean_ms,
            s.std_ms,
            r.min_ms(),
            r.max_ms(),
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `BENCH_<bench>.json` (latency schema) at the workspace root.
///
/// # Errors
///
/// Propagates the underlying file-write error.
pub fn write_latency_json(
    bench: &str,
    records: &[LatencyRecord],
) -> std::io::Result<std::path::PathBuf> {
    let path = workspace_root().join(format!("BENCH_{bench}.json"));
    std::fs::write(&path, latency_records_json(bench, records))?;
    Ok(path)
}

/// One measured EPC-pressure configuration: enclave relaunch rates and
/// execution throughput at a given oversubscription factor (resident page
/// cap = total REG pages / factor).
#[derive(Debug, Clone)]
pub struct PressureRecord {
    /// Benchmark app name.
    pub app: String,
    /// Build configuration (`"plain"` / `"elide"`).
    pub build: &'static str,
    /// EPC oversubscription factor (1 = whole working set resident).
    pub factor: usize,
    /// Resident REG-page cap derived from the factor.
    pub page_cap: usize,
    /// Total REG pages the enclave holds when unconstrained.
    pub total_pages: usize,
    /// Warm relaunches per second (sealed fast-path restore for the elide
    /// build; pre-parsed [`elide_enclave::loader::ImagePlan`] reload for
    /// plain).
    pub warm_per_s: f64,
    /// Cold launches per second (full attested handshake for the elide
    /// build; ELF re-parse + load for plain).
    pub cold_per_s: f64,
    /// Execution throughput under the page cap, millions of guest
    /// instructions per second (best-of-reps).
    pub mips: f64,
    /// Page evictions (EWB) during the throughput region.
    pub evictions: u64,
    /// Page reloads (ELDU) during the throughput region.
    pub reloads: u64,
}

impl PressureRecord {
    /// Warm-over-cold relaunch speedup.
    pub fn speedup(&self) -> f64 {
        if self.cold_per_s > 0.0 {
            self.warm_per_s / self.cold_per_s
        } else {
            0.0
        }
    }
}

/// Renders EPC-pressure records as JSON.
pub fn pressure_records_json(bench: &str, records: &[PressureRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(bench)));
    out.push_str("  \"unit\": \"relaunches_per_second\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"build\": \"{}\", \"factor\": {}, \"page_cap\": {}, \
             \"total_pages\": {}, \"warm_per_s\": {:.1}, \"cold_per_s\": {:.1}, \
             \"speedup\": {:.2}, \"mips\": {:.3}, \"evictions\": {}, \"reloads\": {}}}{}\n",
            json_escape(&r.app),
            json_escape(r.build),
            r.factor,
            r.page_cap,
            r.total_pages,
            r.warm_per_s,
            r.cold_per_s,
            r.speedup(),
            r.mips,
            r.evictions,
            r.reloads,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `BENCH_<bench>.json` (pressure schema) at the workspace root.
///
/// # Errors
///
/// Propagates the underlying file-write error.
pub fn write_pressure_json(
    bench: &str,
    records: &[PressureRecord],
) -> std::io::Result<std::path::PathBuf> {
    let path = workspace_root().join(format!("BENCH_{bench}.json"));
    std::fs::write(&path, pressure_records_json(bench, records))?;
    Ok(path)
}

/// The oversubscription factors the EPC-pressure bench sweeps.
pub const PRESSURE_FACTORS: [usize; 3] = [1, 4, 16];

/// Times the throughput region (`reps` workload repetitions, best-of) on a
/// runtime whose budget is already armed, returning (mips, evictions,
/// reloads) accumulated over the whole region.
fn pressure_mips(
    name: &str,
    rt: &mut elide_enclave::runtime::EnclaveRuntime,
    indices: &std::collections::HashMap<String, u64>,
    reps: usize,
) -> (f64, u64, u64) {
    run_workload(name, rt, indices); // warmup (first-touch reloads)
    let mut best = f64::INFINITY;
    let mut instructions = 0;
    for _ in 0..reps {
        let base = rt.retired_total();
        let t0 = Instant::now();
        run_workload(name, rt, indices);
        let seconds = t0.elapsed().as_secs_f64();
        instructions = rt.retired_total() - base;
        if seconds < best {
            best = seconds;
        }
    }
    let (ev, rl) =
        rt.epc_budget().map(|b| (b.stats().evictions, b.stats().reloads)).unwrap_or((0, 0));
    (instructions as f64 / best / 1e6, ev, rl)
}

/// Measures the **elide** build of `app` under EPC pressure: cold
/// full-handshake launch rate once, then per factor the warm sealed-restore
/// rate and execution throughput under the derived page cap.
///
/// # Panics
///
/// Panics if any pipeline stage fails (benchmark harness context).
pub fn epc_pressure_elide(app: &App, reps: usize) -> Vec<PressureRecord> {
    use elide_core::api::{protect, Mode, Platform};
    use elide_core::protocol::InProcessTransport;
    use elide_core::restore::new_sealed_store;
    use elide_crypto::rsa::RsaKeyPair;
    use sgx_sim::budget::EpcBudget;
    use sgx_sim::quote::AttestationService;
    use std::sync::{Arc, Mutex};

    let image = app.build_elide_image().expect("build");
    let mut rng = SeededRandom::new(0xE9C);
    let vendor = RsaKeyPair::generate(512, &mut rng);
    let package = protect(&image, &vendor, &Mode::Whitelist, DataPlacement::Remote, &mut rng)
        .expect("protect");
    let mut ias = AttestationService::new();
    let platform = Platform::provision(&mut rng, &mut ias);
    let server = Arc::new(package.make_server(ias));
    let plan = package.image_plan().expect("plan");
    let indices = app.protected_indices();
    let restore_idx = indices["elide_restore"];

    // Provision once: the sealed blob every warm start below reuses.
    let sealed = new_sealed_store();
    let transport = Arc::new(Mutex::new(InProcessTransport::new(Arc::clone(&server))));
    let mut launched = package
        .launch_planned(&plan, &platform, transport, Arc::clone(&sealed), 0xC01D)
        .expect("launch");
    launched.restore(restore_idx).expect("restore");
    let total_pages = launched.runtime.enclave().resident_reg_pages();
    drop(launched);

    // Cold rate: every cycle pays ELF-planned load + DH + attestation +
    // GCM transfer (fresh sealed store each time).
    let t0 = Instant::now();
    for i in 0..reps {
        let transport = Arc::new(Mutex::new(InProcessTransport::new(Arc::clone(&server))));
        let mut l = package
            .launch_planned(&plan, &platform, transport, new_sealed_store(), 0xC01D + i as u64)
            .expect("launch");
        l.restore(restore_idx).expect("restore");
    }
    let cold_per_s = reps as f64 / t0.elapsed().as_secs_f64();

    let mut records = Vec::new();
    for factor in PRESSURE_FACTORS {
        let page_cap = (total_pages / factor).max(1);

        // Warm rate under the cap: load from the plan, arm the budget,
        // sealed fast-path restore — zero server contact.
        let t0 = Instant::now();
        let mut last = None;
        for i in 0..reps {
            let mut l = package
                .warm_start(&plan, &platform, Arc::clone(&sealed), 0x3A91 + i as u64)
                .expect("warm start");
            let mut brng = SeededRandom::new(0xB0D6 + i as u64);
            l.runtime.set_epc_budget(EpcBudget::new(page_cap, &mut brng)).expect("budget");
            l.restore(restore_idx).expect("warm restore");
            last = Some(l);
        }
        let warm_per_s = reps as f64 / t0.elapsed().as_secs_f64();

        let mut l = last.expect("reps > 0");
        let (mips, evictions, reloads) = pressure_mips(app.name, &mut l.runtime, &indices, reps);
        records.push(PressureRecord {
            app: app.name.to_string(),
            build: "elide",
            factor,
            page_cap,
            total_pages,
            warm_per_s,
            cold_per_s,
            mips,
            evictions,
            reloads,
        });
    }
    records
}

/// Measures the **plain** build of `app` under EPC pressure. "Cold" pays
/// the ELF parse + load every cycle; "warm" reloads from a pre-parsed
/// [`elide_enclave::loader::ImagePlan`]. There is no restore step.
///
/// # Panics
///
/// Panics if any pipeline stage fails.
pub fn epc_pressure_plain(app: &App, reps: usize) -> Vec<PressureRecord> {
    use elide_crypto::rsa::RsaKeyPair;
    use elide_enclave::loader::{sign_enclave, ImagePlan};
    use elide_enclave::runtime::EnclaveRuntime;
    use sgx_sim::budget::EpcBudget;

    let image = app.build_plain_image().expect("build");
    let mut rng = SeededRandom::new(0xB1A);
    let cpu = sgx_sim::SgxCpu::new(&mut rng);
    let vendor = RsaKeyPair::generate(512, &mut rng);
    let sigstruct = sign_enclave(&image, &vendor, 1, 1).expect("sign");
    let plan = ImagePlan::new(&image).expect("plan");
    let indices = app.plain_indices();

    let probe = plan.load(&cpu, &sigstruct).expect("load");
    let total_pages = probe.enclave.resident_reg_pages();
    drop(probe);

    let t0 = Instant::now();
    for _ in 0..reps {
        let p = ImagePlan::new(&image).expect("plan");
        std::hint::black_box(p.load(&cpu, &sigstruct).expect("load"));
    }
    let cold_per_s = reps as f64 / t0.elapsed().as_secs_f64();

    let mut records = Vec::new();
    for factor in PRESSURE_FACTORS {
        let page_cap = (total_pages / factor).max(1);

        let t0 = Instant::now();
        let mut last = None;
        for i in 0..reps {
            let loaded = plan.load(&cpu, &sigstruct).expect("load");
            let mut rt =
                EnclaveRuntime::with_rng(loaded, Box::new(SeededRandom::new(0x11 + i as u64)));
            let mut brng = SeededRandom::new(0xB0D6 + i as u64);
            rt.set_epc_budget(EpcBudget::new(page_cap, &mut brng)).expect("budget");
            last = Some(rt);
        }
        let warm_per_s = reps as f64 / t0.elapsed().as_secs_f64();

        let mut rt = last.expect("reps > 0");
        let (mips, evictions, reloads) = pressure_mips(app.name, &mut rt, &indices, reps);
        records.push(PressureRecord {
            app: app.name.to_string(),
            build: "plain",
            factor,
            page_cap,
            total_pages,
            warm_per_s,
            cold_per_s,
            mips,
            evictions,
            reloads,
        });
    }
    records
}

/// A percentile of a **sorted** sample (nearest-rank), in the sample's
/// own unit. Returns 0.0 for an empty sample.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (sorted.len() as f64 * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One measured configuration of the open-loop provisioning load bench:
/// `requests` arrivals at `rate_per_s`, each timed from its *scheduled*
/// arrival to completion (so queueing delay counts, as in any honest
/// open-loop load test).
#[derive(Debug, Clone)]
pub struct LoadRecord {
    /// Client mode: `"full"` (handshake + fetch) or `"resumed"` (one
    /// round-trip ticket resume), or `"hold"` for the concurrency phase.
    pub mode: &'static str,
    /// Target arrival rate, requests per second (0 for the hold phase).
    pub rate_per_s: f64,
    /// Arrivals issued.
    pub requests: usize,
    /// Arrivals that failed (any error; 0 in a healthy run).
    pub errors: usize,
    /// Peak concurrently-open client connections during the run.
    pub concurrent: usize,
    /// Per-request scheduled-arrival→completion latencies in seconds.
    pub samples: Vec<f64>,
}

impl LoadRecord {
    /// Sorted copy of the samples.
    fn sorted(&self) -> Vec<f64> {
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s
    }

    /// (p50, p99, p99.9) of the latency samples, in milliseconds.
    pub fn percentiles_ms(&self) -> (f64, f64, f64) {
        let s = self.sorted();
        (percentile(&s, 0.50) * 1e3, percentile(&s, 0.99) * 1e3, percentile(&s, 0.999) * 1e3)
    }

    /// Slowest request, in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max) * 1e3
    }
}

/// Renders load records as JSON (latency distribution vs arrival rate).
pub fn load_records_json(bench: &str, records: &[LoadRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(bench)));
    out.push_str("  \"unit\": \"ms\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let (p50, p99, p999) = r.percentiles_ms();
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"rate_per_s\": {:.1}, \"requests\": {}, \"errors\": {}, \
             \"concurrent\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \
             \"max_ms\": {:.3}}}{}\n",
            json_escape(r.mode),
            r.rate_per_s,
            r.requests,
            r.errors,
            r.concurrent,
            p50,
            p99,
            p999,
            r.max_ms(),
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `BENCH_<bench>.json` (load schema) at the workspace root.
///
/// # Errors
///
/// Propagates the underlying file-write error.
pub fn write_load_json(bench: &str, records: &[LoadRecord]) -> std::io::Result<std::path::PathBuf> {
    let path = workspace_root().join(format!("BENCH_{bench}.json"));
    std::fs::write(&path, load_records_json(bench, records))?;
    Ok(path)
}

/// One measured configuration of the delegated-provisioning bench: `peers`
/// enclaves provisioned per repetition, either each against the origin
/// server ("central") or through one local delegate ("delegated" — the
/// per-rep cost includes standing the delegate up, so the single origin
/// handshake it amortises is inside the timed region).
#[derive(Debug, Clone)]
pub struct DelegationRecord {
    /// Provisioning mode: `"central"` or `"delegated"`.
    pub mode: &'static str,
    /// Peer enclaves provisioned per repetition.
    pub peers: usize,
    /// Repetitions timed.
    pub reps: usize,
    /// Origin handshakes consumed per repetition (the headline: `peers`
    /// for central, exactly 1 for delegated).
    pub origin_handshakes: u64,
    /// Peer provisions per second over the whole timed region.
    pub provisions_per_s: f64,
}

impl DelegationRecord {
    /// Mean wall-clock milliseconds per peer provision.
    pub fn ms_per_peer(&self) -> f64 {
        if self.provisions_per_s > 0.0 {
            1e3 / self.provisions_per_s
        } else {
            0.0
        }
    }
}

/// Renders delegation records as JSON.
pub fn delegation_records_json(bench: &str, records: &[DelegationRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(bench)));
    out.push_str("  \"unit\": \"provisions_per_second\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"peers\": {}, \"reps\": {}, \"origin_handshakes\": {}, \
             \"provisions_per_s\": {:.1}, \"ms_per_peer\": {:.3}}}{}\n",
            json_escape(r.mode),
            r.peers,
            r.reps,
            r.origin_handshakes,
            r.provisions_per_s,
            r.ms_per_peer(),
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `BENCH_<bench>.json` (delegation schema) at the workspace root.
///
/// # Errors
///
/// Propagates the underlying file-write error.
pub fn write_delegation_json(
    bench: &str,
    records: &[DelegationRecord],
) -> std::io::Result<std::path::PathBuf> {
    let path = workspace_root().join(format!("BENCH_{bench}.json"));
    std::fs::write(&path, delegation_records_json(bench, records))?;
    Ok(path)
}

/// Measures host-level provisioning fan-out: `peers` enclaves per rep,
/// central (every peer pays the full origin handshake) vs delegated (one
/// delegate stands up against the origin, every peer restores from it over
/// local attestation). Returns one record per mode.
///
/// # Panics
///
/// Panics if any pipeline stage fails (benchmark harness context).
pub fn delegation_provisioning(peers: usize, reps: usize) -> Vec<DelegationRecord> {
    use elide_core::api::{protect, Mode, Platform};
    use elide_core::client::ProvisionClient;
    use elide_core::delegation::{DelegateServer, EcallReportVerifier};
    use elide_core::elide_asm::ELIDE_ASM;
    use elide_core::protocol::{InProcessTransport, Transport};
    use elide_core::restore::{new_sealed_store, RestoreRoute};
    use elide_core::ticket::now_ms;
    use elide_core::ElideError;
    use elide_crypto::rsa::RsaKeyPair;
    use sgx_sim::quote::{AttestationService, QE_MEASUREMENT};
    use sgx_sim::report::{ereport, TargetInfo};
    use std::sync::{Arc, Mutex};

    const RESTORE_IDX: u64 = 1;
    const VERIFY_IDX: u64 = 2;

    let mut rng = SeededRandom::new(0xDE1E);
    let mut b = elide_enclave::image::EnclaveImageBuilder::new();
    b.source(ELIDE_ASM)
        .source(
            ".section text\n.global get_answer\n.func get_answer\n    movi r0, 42\n    ret\n.endfunc\n",
        )
        .ecall("get_answer")
        .ecall("elide_restore")
        .ecall("elide_verify_report");
    let image = b.build().expect("assemble delegation guest");
    let vendor = RsaKeyPair::generate(512, &mut rng);
    let package = protect(&image, &vendor, &Mode::Whitelist, DataPlacement::Remote, &mut rng)
        .expect("protect");

    let mut scratch = AttestationService::new();
    let platform = Arc::new(Platform::provision(&mut rng, &mut scratch));
    let mut ias = AttestationService::new();
    ias.register_device(platform.qe.device_public_key().clone());
    let mrenclave = package.mrenclave;
    let mrsigner = package.sigstruct.mrsigner().expect("mrsigner");
    let server = Arc::new(package.make_server(ias));
    server.authorize_delegate(mrenclave, &[(mrenclave, mrsigner)]);
    let plan = package.image_plan().expect("plan");

    let origin =
        |server: &Arc<elide_core::server::AuthServer>| -> Arc<Mutex<dyn Transport + Send>> {
            Arc::new(Mutex::new(InProcessTransport::new(Arc::clone(server))))
        };

    // Central: every peer runs the full DH + quote + GCM handshake.
    let before = server.handshakes();
    let t0 = Instant::now();
    for rep in 0..reps {
        for i in 0..peers {
            let seed = 0xC000 + (rep * peers + i) as u64;
            let mut l = package
                .launch_planned(&plan, &platform, origin(&server), new_sealed_store(), seed)
                .expect("launch");
            l.restore(RESTORE_IDX).expect("central restore");
        }
    }
    let central_s = t0.elapsed().as_secs_f64();
    let central_handshakes = (server.handshakes() - before) / reps as u64;

    // Delegated: one stand-up handshake per rep, then every peer restores
    // from the local delegate over a targeted report.
    let before = server.handshakes();
    let t0 = Instant::now();
    for rep in 0..reps {
        let host_seed = 0xD000 + rep as u64;
        let anchor = package
            .launch_planned(&plan, &platform, origin(&server), new_sealed_store(), host_seed)
            .expect("anchor launch");
        let anchor = Arc::new(Mutex::new(anchor));
        let mut client = ProvisionClient::new().with_rng(Box::new(SeededRandom::new(host_seed)));
        let mut transport = InProcessTransport::new(Arc::clone(&server));
        let a = Arc::clone(&anchor);
        let qe = Arc::clone(&platform.qe);
        let mut quote_fn = move |report_data: [u8; 64]| {
            let app = a.lock().unwrap();
            let target = TargetInfo { mrenclave: QE_MEASUREMENT };
            let report = ereport(app.runtime.enclave(), &target, report_data)
                .map_err(|e| ElideError::Transport(format!("ereport: {e}")))?;
            let quote =
                qe.quote(&report).map_err(|e| ElideError::Transport(format!("quote: {e}")))?;
            Ok(quote.to_bytes())
        };
        client.full_handshake(&mut transport, &mut quote_fn).expect("delegate handshake");
        let origin_key = server.delegation_public_key().expect("delegation key");
        let bundle = client.fetch_delegation(&mut transport, &origin_key).expect("bundle");
        let verifier = EcallReportVerifier::new(anchor, VERIFY_IDX, mrenclave);
        let delegate = DelegateServer::new(
            bundle,
            &origin_key,
            Box::new(verifier),
            Box::new(SeededRandom::new(host_seed ^ 0xD11)),
            now_ms(),
        )
        .expect("delegate stands up");
        let target = delegate.policy().delegate_mrenclave;
        for i in 0..peers {
            let seed = 0xE000 + (rep * peers + i) as u64;
            let peer: Arc<Mutex<dyn Transport + Send>> = Arc::new(Mutex::new(delegate.connect()));
            let route = RestoreRoute { origin: origin(&server), delegate: Some(peer) };
            let mut l = package
                .launch_routed(&plan, &platform, route, new_sealed_store(), seed)
                .expect("peer launch");
            l.restore_delegated(RESTORE_IDX, &target).expect("delegated restore");
        }
    }
    let delegated_s = t0.elapsed().as_secs_f64();
    let delegated_handshakes = (server.handshakes() - before) / reps as u64;

    let total = (peers * reps) as f64;
    vec![
        DelegationRecord {
            mode: "central",
            peers,
            reps,
            origin_handshakes: central_handshakes,
            provisions_per_s: total / central_s,
        },
        DelegationRecord {
            mode: "delegated",
            peers,
            reps,
            origin_handshakes: delegated_handshakes,
            provisions_per_s: total / delegated_s,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant_sample() {
        let s = stats(&[0.002, 0.002, 0.002]);
        assert!((s.mean_ms - 2.0).abs() < 1e-9);
        assert!(s.std_ms.abs() < 1e-9);
    }

    #[test]
    fn bench_json_is_well_formed() {
        let records = vec![
            BenchRecord { name: "aes".into(), build: "plain", instructions: 1000, seconds: 0.5 },
            BenchRecord { name: "a\"b".into(), build: "elide", instructions: 2000, seconds: 1.0 },
        ];
        let json = bench_records_json("exec_throughput", &records);
        assert!(json.contains("\"bench\": \"exec_throughput\""));
        assert!(json.contains("\"mips\": 0.002"));
        assert!(json.contains("a\\\"b"), "quotes must be escaped: {json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn kernel_json_is_well_formed() {
        let records = vec![
            KernelRecord { name: "aes_gcm_seal".into(), bytes: 1 << 20, iters: 8, seconds: 0.5 },
            KernelRecord { name: "rsa_verify".into(), bytes: 0, iters: 100, seconds: 1.0 },
        ];
        let json = kernel_records_json("crypto_kernels", &records);
        assert!(json.contains("\"kernel\": \"aes_gcm_seal\""));
        assert!(json.contains("\"ops_per_s\": 100.000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn latency_json_is_well_formed() {
        let records = vec![LatencyRecord {
            name: "aes".into(),
            build: "elide",
            runs: 2,
            samples: vec![0.010, 0.012],
        }];
        let json = latency_records_json("launch_latency", &records);
        assert!(json.contains("\"mean_ms\": 11.000"));
        assert!(json.contains("\"min_ms\": 10.000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&s, 0.50), 50.0);
        assert_eq!(percentile(&s, 0.99), 99.0);
        assert_eq!(percentile(&s, 0.999), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.999), 7.0);
    }

    #[test]
    fn load_json_is_well_formed() {
        let records = vec![LoadRecord {
            mode: "full",
            rate_per_s: 50.0,
            requests: 3,
            errors: 0,
            concurrent: 3,
            samples: vec![0.001, 0.002, 0.010],
        }];
        let json = load_records_json("provision_load", &records);
        assert!(json.contains("\"rate_per_s\": 50.0"));
        assert!(json.contains("\"p50_ms\": 2.000"));
        assert!(json.contains("\"p999_ms\": 10.000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn delegation_json_is_well_formed() {
        let records = vec![
            DelegationRecord {
                mode: "central",
                peers: 4,
                reps: 10,
                origin_handshakes: 4,
                provisions_per_s: 250.0,
            },
            DelegationRecord {
                mode: "delegated",
                peers: 4,
                reps: 10,
                origin_handshakes: 1,
                provisions_per_s: 500.0,
            },
        ];
        let json = delegation_records_json("delegation", &records);
        assert!(json.contains("\"mode\": \"delegated\""));
        assert!(json.contains("\"origin_handshakes\": 1"));
        assert!(json.contains("\"ms_per_peer\": 2.000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn workspace_root_is_a_workspace() {
        assert!(workspace_root().join("Cargo.toml").is_file());
        assert!(workspace_root().join("crates/bench").is_dir());
    }

    #[test]
    fn table1_row_smoke() {
        let app = elide_apps::crackme::app();
        let wl = Whitelist::from_dummy_enclave().unwrap();
        let row = table1_row(&app, &wl);
        assert!(row.tc_functions > row.sanitized_functions);
        assert!(row.sanitized_bytes > 0);
        assert!(row.tc_bytes > row.sanitized_bytes);
    }
}
