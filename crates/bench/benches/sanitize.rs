//! Criterion bench for Table 2's "Sanitize Time" columns: the offline
//! sanitizer over each benchmark's enclave image, remote vs. local mode
//! (local is slower because it AES-GCM-encrypts the secret data at
//! sanitize time, matching the paper's 0.09 ms vs 0.15 ms split).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elide_core::sanitizer::{sanitize, DataPlacement};
use elide_core::whitelist::Whitelist;
use elide_crypto::rng::SeededRandom;

fn bench_sanitize(c: &mut Criterion) {
    let whitelist = Whitelist::from_dummy_enclave().expect("whitelist");
    let mut group = c.benchmark_group("table2_sanitize");
    group.sample_size(20);
    for app in elide_apps::all_apps() {
        let image = app.build_elide_image().expect("build");
        for (label, placement) in
            [("remote", DataPlacement::Remote), ("local", DataPlacement::LocalEncrypted)]
        {
            group.bench_with_input(
                BenchmarkId::new(label, app.name),
                &image,
                |b, image| {
                    let mut rng = SeededRandom::new(1);
                    b.iter(|| {
                        sanitize(image, &whitelist, placement, &mut rng).expect("sanitize")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sanitize);
criterion_main!(benches);
