//! The client/server protocol (§5): single-byte requests, length-prefixed
//! frames, AES-GCM channel encryption after the attested handshake.
//!
//! This module is the *client* half plus the shared message crypto; the
//! server half lives in [`crate::session`] (state machine) and
//! [`crate::service`] (connection loop). Both client transports — TCP and
//! in-process — speak through the same [`crate::transport::Framed`] codec
//! to the same [`crate::service::serve_connection`] loop.

use crate::error::{ElideError, ServerError};
use crate::server::AuthServer;
use crate::transport::channel::pipe;
use crate::transport::{BoxedWire, Framed, Limits};
use elide_crypto::gcm::AesGcm;
use elide_crypto::rng::RandomSource;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Channel message overhead: 12-byte IV + 16-byte tag.
pub const CHANNEL_OVERHEAD: usize = 28;

/// Seals a channel message as `[iv 12][ct][tag 16]` under an explicit IV
/// (the session layer derives IVs from its sequence counter).
pub fn seal_msg(key: &[u8; 16], iv: &[u8; 12], plaintext: &[u8]) -> Vec<u8> {
    seal_msg_with(&AesGcm::new(key).expect("16-byte key"), iv, plaintext)
}

/// Seals a channel message under an already-expanded cipher context.
///
/// [`crate::session::Session`] builds its [`AesGcm`] once per handshake and
/// reuses it here, so per-message cost is the GCM pass alone — no AES key
/// expansion or GHASH table derivation on the hot path.
pub fn seal_msg_with(gcm: &AesGcm, iv: &[u8; 12], plaintext: &[u8]) -> Vec<u8> {
    let (ct, tag) = gcm.seal(iv, &[], plaintext);
    let mut out = Vec::with_capacity(CHANNEL_OVERHEAD + ct.len());
    out.extend_from_slice(iv);
    out.extend_from_slice(&ct);
    out.extend_from_slice(&tag);
    out
}

/// Encrypts a channel message as `[iv 12][ct][tag 16]` with a random IV.
pub fn encrypt_msg(key: &[u8; 16], plaintext: &[u8], rng: &mut dyn RandomSource) -> Vec<u8> {
    let mut iv = [0u8; 12];
    rng.fill(&mut iv);
    seal_msg(key, &iv, plaintext)
}

/// Decrypts a channel message produced by [`seal_msg`]/[`encrypt_msg`].
///
/// # Errors
///
/// Returns [`ElideError::Transport`] on truncated or unauthentic messages.
pub fn decrypt_msg(key: &[u8; 16], msg: &[u8]) -> Result<Vec<u8>, ElideError> {
    if msg.len() < CHANNEL_OVERHEAD {
        return Err(ElideError::Transport("channel message too short".into()));
    }
    let gcm = AesGcm::new(key).expect("16-byte key");
    let iv: [u8; 12] = msg[..12].try_into().expect("12 bytes");
    let tag: [u8; 16] = msg[msg.len() - 16..].try_into().expect("16 bytes");
    gcm.open(&iv, &[], &msg[12..msg.len() - 16], &tag)
        .map_err(|_| ElideError::Transport("channel authentication failed".into()))
}

/// Client-side transport to the authentication server.
pub trait Transport {
    /// Sends request type `req` with `payload`, returning the response.
    ///
    /// # Errors
    ///
    /// Returns [`ElideError::Server`] for server-reported failures and
    /// [`ElideError::Transport`] for connection problems.
    fn request(&mut self, req: u8, payload: &[u8]) -> Result<Vec<u8>, ElideError>;
}

impl Transport for Box<dyn Transport + Send> {
    fn request(&mut self, req: u8, payload: &[u8]) -> Result<Vec<u8>, ElideError> {
        (**self).request(req, payload)
    }
}

/// Status byte for success.
pub(crate) const STATUS_OK: u8 = 0;

pub(crate) fn server_error_to_status(e: &ServerError) -> u8 {
    match e {
        ServerError::AttestationFailed => 1,
        ServerError::WrongEnclave => 2,
        ServerError::BadBinding => 3,
        ServerError::NoSession => 4,
        ServerError::BadRequest => 5,
        ServerError::UnknownRequest(_) => 6,
        ServerError::Internal => 7,
        ServerError::TicketRejected => 8,
        ServerError::DelegationRejected => 9,
    }
}

pub(crate) fn status_to_server_error(status: u8) -> ServerError {
    match status {
        1 => ServerError::AttestationFailed,
        2 => ServerError::WrongEnclave,
        3 => ServerError::BadBinding,
        4 => ServerError::NoSession,
        5 => ServerError::BadRequest,
        7 => ServerError::Internal,
        8 => ServerError::TicketRejected,
        9 => ServerError::DelegationRejected,
        other => ServerError::UnknownRequest(other),
    }
}

/// The one client-side request loop: a [`Framed`] codec over any wire.
/// Both [`TcpTransport`] and [`InProcessTransport`] deref to this.
#[derive(Debug)]
pub struct FramedTransport {
    framed: Framed<BoxedWire>,
}

impl FramedTransport {
    /// Wraps an already-connected wire.
    ///
    /// # Errors
    ///
    /// Returns [`ElideError::Transport`] if limits cannot be applied.
    pub fn new(wire: BoxedWire, limits: Limits) -> Result<Self, ElideError> {
        let framed = Framed::new(wire, limits)
            .map_err(|e| ElideError::Transport(format!("configure connection: {e}")))?;
        Ok(FramedTransport { framed })
    }
}

impl Transport for FramedTransport {
    fn request(&mut self, req: u8, payload: &[u8]) -> Result<Vec<u8>, ElideError> {
        self.framed.send(req, payload).map_err(|e| ElideError::Transport(format!("send: {e}")))?;
        let (status, body) = self
            .framed
            .recv()
            .map_err(|e| ElideError::Transport(format!("recv: {e}")))?
            .ok_or_else(|| ElideError::Transport("server closed the connection".into()))?;
        if status == STATUS_OK {
            Ok(body)
        } else {
            Err(ElideError::Server(status_to_server_error(status)))
        }
    }
}

/// TCP transport to an [`AuthServer`] served by [`crate::service::serve`].
#[derive(Debug)]
pub struct TcpTransport {
    inner: FramedTransport,
}

impl TcpTransport {
    /// Connects to `addr` (e.g. `"127.0.0.1:7788"`) with default limits.
    ///
    /// # Errors
    ///
    /// Returns [`ElideError::Transport`] if the connection fails.
    pub fn connect(addr: &str) -> Result<Self, ElideError> {
        Self::connect_with(addr, Limits::default())
    }

    /// Connects with explicit wire limits.
    ///
    /// # Errors
    ///
    /// Returns [`ElideError::Transport`] if the connection fails.
    pub fn connect_with(addr: &str, limits: Limits) -> Result<Self, ElideError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ElideError::Transport(format!("connect {addr}: {e}")))?;
        Ok(TcpTransport { inner: FramedTransport::new(Box::new(stream), limits)? })
    }

    /// Connects with retries and exponential backoff: the service-layer
    /// client policy for servers that are still starting up.
    ///
    /// # Errors
    ///
    /// Returns the last connect error once attempts are exhausted.
    pub fn connect_with_retry(
        addr: &str,
        limits: Limits,
        policy: &crate::restore::RetryPolicy,
    ) -> Result<Self, ElideError> {
        let mut last = None;
        for delay in policy.delays() {
            match Self::connect_with(addr, limits) {
                Ok(t) => return Ok(t),
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(delay);
                }
            }
        }
        match Self::connect_with(addr, limits) {
            Ok(t) => Ok(t),
            Err(e) => Err(last.unwrap_or(e)),
        }
    }
}

impl Transport for TcpTransport {
    fn request(&mut self, req: u8, payload: &[u8]) -> Result<Vec<u8>, ElideError> {
        self.inner.request(req, payload)
    }
}

/// In-process transport: a private pipe to a dedicated serving thread
/// running the same [`crate::service::serve_connection`] loop as the TCP
/// service. Fast path for tests and single-process demos — on the
/// identical wire/session code path as the network.
#[derive(Debug)]
pub struct InProcessTransport {
    inner: FramedTransport,
}

impl InProcessTransport {
    /// Connects a fresh in-process session to `server` (default limits).
    pub fn new(server: Arc<AuthServer>) -> Self {
        Self::with_limits(server, Limits::default())
    }

    /// Connects with explicit wire limits (both directions).
    pub fn with_limits(server: Arc<AuthServer>, limits: Limits) -> Self {
        let (client, server_end) = pipe();
        std::thread::spawn(move || {
            // The thread exits when the client end drops (clean EOF).
            if let Ok(mut framed) = Framed::new(server_end, limits) {
                let _ = crate::service::serve_connection(&server, &mut framed);
            }
        });
        let inner =
            FramedTransport::new(Box::new(client), limits).expect("pipe limits are infallible");
        InProcessTransport { inner }
    }
}

impl Transport for InProcessTransport {
    fn request(&mut self, req: u8, payload: &[u8]) -> Result<Vec<u8>, ElideError> {
        self.inner.request(req, payload)
    }
}

/// A transport with no server behind it: every request fails.
///
/// Warm starts restore from the sealed blob alone, so they wire the
/// enclave against this — any attempt to reach the authentication server
/// (i.e. the sealed fast path NOT being taken) fails loudly instead of
/// silently re-running the DH+attestation round-trip.
#[derive(Debug, Default, Clone, Copy)]
pub struct OfflineTransport;

impl Transport for OfflineTransport {
    fn request(&mut self, _req: u8, _payload: &[u8]) -> Result<Vec<u8>, ElideError> {
        Err(ElideError::Transport("offline warm start: no server available".into()))
    }
}

/// A `Duration` helper: exponential backoff series for retry loops.
pub(crate) fn backoff_series(initial: Duration, max: Duration, attempts: u32) -> Vec<Duration> {
    let mut out = Vec::with_capacity(attempts as usize);
    let mut d = initial;
    for _ in 0..attempts {
        out.push(d.min(max));
        d = d.checked_mul(2).unwrap_or(max).min(max);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::SecretMeta;
    use crate::server::ExpectedIdentity;
    use elide_crypto::rng::SeededRandom;
    use sgx_sim::quote::AttestationService;

    #[test]
    fn channel_roundtrip() {
        let key = [5u8; 16];
        let mut rng = SeededRandom::new(1);
        let msg = encrypt_msg(&key, b"the secret text section", &mut rng);
        assert_eq!(msg.len(), b"the secret text section".len() + CHANNEL_OVERHEAD);
        assert_eq!(decrypt_msg(&key, &msg).unwrap(), b"the secret text section");
    }

    #[test]
    fn sealed_iv_is_recoverable() {
        let key = [5u8; 16];
        let iv = [9u8; 12];
        let msg = seal_msg(&key, &iv, b"payload");
        assert_eq!(&msg[..12], &iv);
        assert_eq!(decrypt_msg(&key, &msg).unwrap(), b"payload");
    }

    #[test]
    fn channel_rejects_wrong_key_and_tamper() {
        let mut rng = SeededRandom::new(1);
        let msg = encrypt_msg(&[5u8; 16], b"data", &mut rng);
        assert!(decrypt_msg(&[6u8; 16], &msg).is_err());
        let mut bad = msg.clone();
        bad[13] ^= 1;
        assert!(decrypt_msg(&[5u8; 16], &bad).is_err());
        assert!(decrypt_msg(&[5u8; 16], &msg[..20]).is_err());
    }

    #[test]
    fn status_mapping_roundtrip() {
        for e in [
            ServerError::AttestationFailed,
            ServerError::WrongEnclave,
            ServerError::BadBinding,
            ServerError::NoSession,
            ServerError::BadRequest,
            ServerError::Internal,
            ServerError::TicketRejected,
            ServerError::DelegationRejected,
        ] {
            assert_eq!(status_to_server_error(server_error_to_status(&e)), e);
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let s = backoff_series(Duration::from_millis(10), Duration::from_millis(50), 4);
        assert_eq!(
            s,
            vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(40),
                Duration::from_millis(50),
            ]
        );
    }

    #[test]
    fn in_process_transport_speaks_the_wire_protocol() {
        let meta = SecretMeta {
            flags: 0,
            data_len: 4,
            text_len: 4,
            restore_offset: 0,
            key: [1; 16],
            iv: [2; 12],
            tag: [3; 16],
        };
        let server = Arc::new(
            AuthServer::new(
                meta,
                b"data".to_vec(),
                ExpectedIdentity::default(),
                AttestationService::new(),
            )
            .with_rng(Box::new(SeededRandom::new(1))),
        );
        let mut t = InProcessTransport::new(Arc::clone(&server));
        // Pre-handshake META is NoSession — served through real frames.
        assert!(matches!(t.request(1, &[]), Err(ElideError::Server(ServerError::NoSession))));
        // The wire carries only the status code, so the offending request
        // byte is not recoverable client-side.
        assert!(matches!(
            t.request(9, &[]),
            Err(ElideError::Server(ServerError::UnknownRequest(_)))
        ));
    }
}
