//! `AES` benchmark (ported from tiny-AES128-C): full AES-128 — key
//! schedule, encryption and decryption — in EV64 assembly. The multiply
//! tables and the MixColumns bodies are generated from the host reference
//! so the guest and reference can never drift apart structurally; behaviour
//! is still verified differentially against [`elide_crypto::aes::Aes`].

use crate::harness::App;
use elide_crypto::aes::{gmul, inv_sbox, Aes, SBOX};
use std::collections::HashMap;
use std::fmt::Write as _;

fn byte_table(name: &str, vals: &[u8]) -> String {
    let mut s = format!("{name}:\n");
    for chunk in vals.chunks(16) {
        s.push_str("    .byte ");
        for (i, v) in chunk.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            write!(s, "{v}").expect("write");
        }
        s.push('\n');
    }
    s
}

/// ShiftRows source-index table: `new[i] = st[tab[i]]` (column-major state).
fn shift_tab() -> [u8; 16] {
    let mut t = [0u8; 16];
    for c in 0..4 {
        for r in 0..4 {
            t[4 * c + r] = (4 * ((c + r) % 4) + r) as u8;
        }
    }
    t
}

fn inverse_perm(t: [u8; 16]) -> [u8; 16] {
    let mut inv = [0u8; 16];
    for (i, &v) in t.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    inv
}

/// Generates the MixColumns (or inverse) body for one column held at
/// `aes_st + 4c`, with input bytes preloaded in r5..r8 and the column base
/// address in r11.
fn mix_body(coeff_rows: [[u8; 4]; 4]) -> String {
    let mut s = String::new();
    for (r, coeffs) in coeff_rows.iter().enumerate() {
        s.push_str("    movi r9, 0\n");
        for (j, &coeff) in coeffs.iter().enumerate() {
            let src = 5 + j; // r5..r8
            if coeff == 1 {
                s.push_str(&format!("    xor  r9, r9, r{src}\n"));
            } else {
                s.push_str(&format!(
                    "    la   r12, aes_mul{coeff}\n    add  r12, r12, r{src}\n    ld8u r13, [r12]\n    xor  r9, r9, r13\n"
                ));
            }
        }
        s.push_str(&format!("    st8  r9, [r11+{r}]\n"));
    }
    s
}

/// Builds the guest program.
pub fn app() -> App {
    let mul = |k: u8| -> Vec<u8> { (0..=255u8).map(|b| gmul(b, k)).collect() };
    let mut tables = String::new();
    tables.push_str(&byte_table("aes_sbox", &SBOX));
    tables.push_str(&byte_table("aes_inv_sbox", &inv_sbox()[..]));
    for k in [2u8, 3, 9, 11, 13, 14] {
        tables.push_str(&byte_table(&format!("aes_mul{k}"), &mul(k)));
    }
    tables.push_str(&byte_table("aes_shift_tab", &shift_tab()));
    tables.push_str(&byte_table("aes_inv_shift_tab", &inverse_perm(shift_tab())));
    tables.push_str(&byte_table(
        "aes_rcon",
        &[0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36],
    ));

    let enc_mix = mix_body([[2, 3, 1, 1], [1, 2, 3, 1], [1, 1, 2, 3], [3, 1, 1, 2]]);
    let dec_mix = mix_body([[14, 11, 13, 9], [9, 14, 11, 13], [13, 9, 14, 11], [11, 13, 9, 14]]);

    let asm = format!(
        r#"
.section text
; aes_set_key(key = r2, 16 bytes) -> r0 = 0
.global aes_set_key
.func aes_set_key
    la   r1, aes_rk
    movi r3, 16
    call elide_memcpy
    movi r10, 4              ; word index i
.kloop:
    movi r9, 44
    bgeu r10, r9, .kdone
    la   r11, aes_rk
    shli r12, r10, 2
    add  r13, r11, r12       ; &rk[4i]
    ld8u r5, [r13-4]
    ld8u r6, [r13-3]
    ld8u r7, [r13-2]
    ld8u r8, [r13-1]
    andi r9, r10, 3
    movi r14, 0
    bne  r9, r14, .no_rot
    ; RotWord
    mov  r9, r5
    mov  r5, r6
    mov  r6, r7
    mov  r7, r8
    mov  r8, r9
    ; SubWord
    la   r14, aes_sbox
    add  r9, r14, r5
    ld8u r5, [r9]
    add  r9, r14, r6
    ld8u r6, [r9]
    add  r9, r14, r7
    ld8u r7, [r9]
    add  r9, r14, r8
    ld8u r8, [r9]
    ; Rcon
    shrui r9, r10, 2
    addi r9, r9, -1
    la   r14, aes_rcon
    add  r9, r14, r9
    ld8u r9, [r9]
    xor  r5, r5, r9
.no_rot:
    ld8u r9, [r13-16]
    xor  r9, r9, r5
    st8  r9, [r13]
    ld8u r9, [r13-15]
    xor  r9, r9, r6
    st8  r9, [r13+1]
    ld8u r9, [r13-14]
    xor  r9, r9, r7
    st8  r9, [r13+2]
    ld8u r9, [r13-13]
    xor  r9, r9, r8
    st8  r9, [r13+3]
    addi r10, r10, 1
    jmp  .kloop
.kdone:
    movi r0, 0
    ret
.endfunc

; aes_ark(round = r1): state ^= round key
.func aes_ark
    la   r2, aes_rk
    shli r3, r1, 4
    add  r2, r2, r3
    la   r3, aes_st
    movi r4, 0
.loop:
    movi r5, 16
    bgeu r4, r5, .done
    add  r5, r3, r4
    ld8u r6, [r5]
    add  r7, r2, r4
    ld8u r8, [r7]
    xor  r6, r6, r8
    st8  r6, [r5]
    addi r4, r4, 1
    jmp  .loop
.done:
    ret
.endfunc

; aes_subbytes(table = r1): state = table[state]
.func aes_subbytes
    la   r3, aes_st
    movi r4, 0
.loop:
    movi r5, 16
    bgeu r4, r5, .done
    add  r5, r3, r4
    ld8u r6, [r5]
    add  r7, r1, r6
    ld8u r6, [r7]
    st8  r6, [r5]
    addi r4, r4, 1
    jmp  .loop
.done:
    ret
.endfunc

; aes_permute(table = r1): state = state[table[i]]
.func aes_permute
    la   r3, aes_st
    la   r4, aes_tmp
    movi r5, 0
.loop:
    movi r6, 16
    bgeu r5, r6, .copy
    add  r6, r1, r5
    ld8u r7, [r6]            ; src index
    add  r7, r3, r7
    ld8u r8, [r7]
    add  r6, r4, r5
    st8  r8, [r6]
    addi r5, r5, 1
    jmp  .loop
.copy:
    la   r1, aes_st
    la   r2, aes_tmp
    movi r3, 16
    call elide_memcpy
    ret
.endfunc

; aes_mixcols: forward MixColumns over the state
.func aes_mixcols
    movi r10, 0              ; column
.col_loop:
    movi r9, 4
    bgeu r10, r9, .done
    la   r11, aes_st
    shli r9, r10, 2
    add  r11, r11, r9        ; column base
    ld8u r5, [r11]
    ld8u r6, [r11+1]
    ld8u r7, [r11+2]
    ld8u r8, [r11+3]
{enc_mix}
    addi r10, r10, 1
    jmp  .col_loop
.done:
    ret
.endfunc

; aes_invmixcols: inverse MixColumns over the state
.func aes_invmixcols
    movi r10, 0
.col_loop:
    movi r9, 4
    bgeu r10, r9, .done
    la   r11, aes_st
    shli r9, r10, 2
    add  r11, r11, r9
    ld8u r5, [r11]
    ld8u r6, [r11+1]
    ld8u r7, [r11+2]
    ld8u r8, [r11+3]
{dec_mix}
    addi r10, r10, 1
    jmp  .col_loop
.done:
    ret
.endfunc

; aes_encrypt(in = r2, out = r4) -> r0 = 16
.global aes_encrypt
.func aes_encrypt
    la   r6, aes_out_ptr
    st64 r4, [r6]
    la   r1, aes_st
    movi r3, 16
    call elide_memcpy
    movi r1, 0
    call aes_ark
    movi r10, 1
.eloop:
    movi r9, 10
    bgeu r10, r9, .efinal
    push r10
    la   r1, aes_sbox
    call aes_subbytes
    la   r1, aes_shift_tab
    call aes_permute
    call aes_mixcols
    pop  r10
    mov  r1, r10
    push r10
    call aes_ark
    pop  r10
    addi r10, r10, 1
    jmp  .eloop
.efinal:
    la   r1, aes_sbox
    call aes_subbytes
    la   r1, aes_shift_tab
    call aes_permute
    movi r1, 10
    call aes_ark
    la   r11, aes_out_ptr
    ld64 r1, [r11]
    la   r2, aes_st
    movi r3, 16
    call elide_memcpy
    movi r0, 16
    ret
.endfunc

; aes_decrypt(in = r2, out = r4) -> r0 = 16
.global aes_decrypt
.func aes_decrypt
    la   r6, aes_out_ptr
    st64 r4, [r6]
    la   r1, aes_st
    movi r3, 16
    call elide_memcpy
    movi r1, 10
    call aes_ark
    la   r1, aes_inv_shift_tab
    call aes_permute
    la   r1, aes_inv_sbox
    call aes_subbytes
    movi r10, 9
.dloop:
    movi r9, 0
    beq  r10, r9, .dfinal
    mov  r1, r10
    push r10
    call aes_ark
    call aes_invmixcols
    la   r1, aes_inv_shift_tab
    call aes_permute
    la   r1, aes_inv_sbox
    call aes_subbytes
    pop  r10
    addi r10, r10, -1
    jmp  .dloop
.dfinal:
    movi r1, 0
    call aes_ark
    la   r11, aes_out_ptr
    ld64 r1, [r11]
    la   r2, aes_st
    movi r3, 16
    call elide_memcpy
    movi r0, 16
    ret
.endfunc

.section rodata
.align 8
{tables}

.section bss
.align 8
aes_out_ptr:
    .zero 8
aes_rk:
    .zero 176
aes_st:
    .zero 16
aes_tmp:
    .zero 16
"#
    );
    App { name: "AES", asm, ecalls: vec!["aes_set_key", "aes_encrypt", "aes_decrypt"] }
}

/// Encrypt/decrypt a batch of blocks under several keys, against the
/// reference. Returns block operations performed.
///
/// # Panics
///
/// Panics on divergence from the reference.
pub fn workload(rt: &mut elide_enclave::EnclaveRuntime, idx: &HashMap<String, u64>) -> u64 {
    let set_key = idx["aes_set_key"];
    let encrypt = idx["aes_encrypt"];
    let decrypt = idx["aes_decrypt"];
    let mut ops = 0;
    for key_seed in 0u8..3 {
        let key: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(31) ^ key_seed);
        let reference = Aes::new_128(&key);
        rt.ecall(set_key, &key, 0).expect("set_key ecall");
        for block_seed in 0u8..8 {
            let block: [u8; 16] =
                core::array::from_fn(|i| (i as u8).wrapping_mul(17).wrapping_add(block_seed));
            let mut expect = block;
            reference.encrypt_block(&mut expect);
            let r = rt.ecall(encrypt, &block, 16).expect("encrypt ecall");
            assert_eq!(&r.output[..16], &expect, "encrypt mismatch key {key_seed}");
            let r = rt.ecall(decrypt, &expect, 16).expect("decrypt ecall");
            assert_eq!(&r.output[..16], &block, "decrypt mismatch key {key_seed}");
            ops += 2;
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{launch_plain, launch_protected};
    use elide_core::sanitizer::DataPlacement;

    #[test]
    fn fips197_appendix_b_in_guest() {
        let app = app();
        let mut p = launch_plain(&app, 60).unwrap();
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let block: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        p.runtime.ecall(p.indices["aes_set_key"], &key, 0).unwrap();
        let r = p.runtime.ecall(p.indices["aes_encrypt"], &block, 16).unwrap();
        assert_eq!(
            &r.output[..16],
            &[
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                0x0b, 0x32
            ]
        );
    }

    #[test]
    fn guest_matches_reference_batch() {
        let app = app();
        let mut p = launch_plain(&app, 61).unwrap();
        assert_eq!(workload(&mut p.runtime, &p.indices), 48);
    }

    #[test]
    fn protected_roundtrip() {
        let app = app();
        let mut p = launch_protected(&app, DataPlacement::Remote, 62).unwrap();
        assert!(p.app.runtime.ecall(p.indices["aes_set_key"], &[0u8; 16], 0).is_err());
        p.restore().unwrap();
        workload(&mut p.app.runtime, &p.indices);
    }
}
