//! Remote attestation: the quoting enclave and the attestation service.
//!
//! The quoting enclave turns a local-attestation [`Report`] into a *quote*
//! signed with a device-specific key; a remote verifier (modeling Intel's
//! attestation service, the root of trust per §2.1) checks the signature
//! against its database of known device keys. The SgxElide authentication
//! server uses this before releasing any secret.

use crate::enclave::SgxCpu;
use crate::error::SgxError;
use crate::report::{verify_report_with_hw, Report};
use elide_crypto::rng::RandomSource;
use elide_crypto::rsa::{RsaKeyPair, RsaPublicKey};

/// Measurement of the (simulated) quoting enclave itself; reports must be
/// targeted at this value to be quoted.
pub const QE_MEASUREMENT: [u8; 32] = [0x51; 32];

/// A quote: the report body signed by the device key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// Quoted enclave's MRENCLAVE.
    pub mrenclave: [u8; 32],
    /// Quoted enclave's MRSIGNER.
    pub mrsigner: [u8; 32],
    /// Report data carried through from the report.
    pub report_data: [u8; 64],
    /// Device signature.
    pub signature: Vec<u8>,
    /// Serialized device public key (identifies the platform).
    pub device_key: Vec<u8>,
}

impl Quote {
    fn payload(mrenclave: &[u8; 32], mrsigner: &[u8; 32], report_data: &[u8; 64]) -> Vec<u8> {
        let mut p = Vec::with_capacity(5 + 32 + 32 + 64);
        p.extend_from_slice(b"QUOTE");
        p.extend_from_slice(mrenclave);
        p.extend_from_slice(mrsigner);
        p.extend_from_slice(report_data);
        p
    }

    /// Serializes the quote with length-prefixed variable fields.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.mrenclave);
        out.extend_from_slice(&self.mrsigner);
        out.extend_from_slice(&self.report_data);
        out.extend_from_slice(&(self.signature.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.signature);
        out.extend_from_slice(&(self.device_key.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.device_key);
        out
    }

    /// Parses a quote serialized by [`Quote::to_bytes`]. The encoding is
    /// canonical: trailing bytes after `device_key` are rejected, so two
    /// distinct byte strings never parse to the same quote.
    pub fn from_bytes(bytes: &[u8]) -> Option<Quote> {
        if bytes.len() < 132 {
            return None;
        }
        let mrenclave: [u8; 32] = bytes[0..32].try_into().ok()?;
        let mrsigner: [u8; 32] = bytes[32..64].try_into().ok()?;
        let report_data: [u8; 64] = bytes[64..128].try_into().ok()?;
        let mut off = 128;
        let sig_len = u32::from_le_bytes(bytes.get(off..off + 4)?.try_into().ok()?) as usize;
        off += 4;
        let signature = bytes.get(off..off + sig_len)?.to_vec();
        off += sig_len;
        let key_len = u32::from_le_bytes(bytes.get(off..off + 4)?.try_into().ok()?) as usize;
        off += 4;
        let device_key = bytes.get(off..off + key_len)?.to_vec();
        off += key_len;
        if off != bytes.len() {
            return None;
        }
        Some(Quote { mrenclave, mrsigner, report_data, signature, device_key })
    }
}

/// The platform quoting enclave: holds the device attestation key.
pub struct QuotingEnclave {
    cpu: SgxCpu,
    device_key: RsaKeyPair,
}

impl std::fmt::Debug for QuotingEnclave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuotingEnclave").finish_non_exhaustive()
    }
}

impl QuotingEnclave {
    /// Provisions a quoting enclave on `cpu` with a fresh device key.
    pub fn provision(cpu: &SgxCpu, rng: &mut dyn RandomSource) -> Self {
        QuotingEnclave { cpu: cpu.clone(), device_key: RsaKeyPair::generate(512, rng) }
    }

    /// The device public key, to be registered with the attestation service
    /// (the analog of Intel provisioning).
    pub fn device_public_key(&self) -> &RsaPublicKey {
        self.device_key.public_key()
    }

    /// Persists the quoting enclave's device key (simulator persistence).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.device_key.to_bytes()
    }

    /// Restores a quoting enclave persisted by [`QuotingEnclave::to_bytes`]
    /// onto (the same) `cpu`.
    pub fn from_bytes(cpu: &SgxCpu, bytes: &[u8]) -> Option<QuotingEnclave> {
        Some(QuotingEnclave { cpu: cpu.clone(), device_key: RsaKeyPair::from_bytes(bytes).ok()? })
    }

    /// Verifies a report targeted at the quoting enclave and signs a quote.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::ReportMacMismatch`] for reports not produced on
    /// this processor or not targeted at the quoting enclave, and
    /// [`SgxError::BadQuote`] if signing fails.
    pub fn quote(&self, report: &Report) -> Result<Quote, SgxError> {
        if !verify_report_with_hw(self.cpu.hardware(), &QE_MEASUREMENT, report) {
            return Err(SgxError::ReportMacMismatch);
        }
        let payload = Quote::payload(&report.mrenclave, &report.mrsigner, &report.report_data);
        let signature = self.device_key.sign(&payload).map_err(|_| SgxError::BadQuote)?;
        Ok(Quote {
            mrenclave: report.mrenclave,
            mrsigner: report.mrsigner,
            report_data: report.report_data,
            signature,
            device_key: self.device_key.public_key().to_bytes(),
        })
    }
}

/// The remote attestation service: a registry of genuine device keys.
#[derive(Debug, Default)]
pub struct AttestationService {
    devices: Vec<RsaPublicKey>,
}

impl AttestationService {
    /// Creates an empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a genuine device key (provisioning).
    pub fn register_device(&mut self, key: RsaPublicKey) {
        self.devices.push(key);
    }

    /// Verifies a quote: the device key must be registered and the
    /// signature must check out.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::BadQuote`] for unknown devices or bad signatures.
    pub fn verify_quote(&self, quote: &Quote) -> Result<(), SgxError> {
        let key = RsaPublicKey::from_bytes(&quote.device_key).map_err(|_| SgxError::BadQuote)?;
        if !self.devices.contains(&key) {
            return Err(SgxError::BadQuote);
        }
        let payload = Quote::payload(&quote.mrenclave, &quote.mrsigner, &quote.report_data);
        key.verify(&payload, &quote.signature).map_err(|_| SgxError::BadQuote)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::Enclave;
    use crate::epc::{PagePerms, PageType};
    use crate::report::{ereport, TargetInfo};
    use crate::sigstruct::SigStruct;
    use elide_crypto::rng::SeededRandom;

    fn make_enclave(cpu: &SgxCpu) -> Enclave {
        let mut e = cpu.ecreate(0x100000, 0x1000).unwrap();
        e.eadd(0x100000, &[3; 4096], PagePerms::RX, PageType::Reg).unwrap();
        for i in 0..16 {
            e.eextend(0x100000 + i * 256).unwrap();
        }
        let kp = RsaKeyPair::generate(512, &mut SeededRandom::new(2));
        let sig = SigStruct::sign(&kp, e.current_measurement().unwrap(), 1, 1).unwrap();
        e.einit(&sig).unwrap();
        e
    }

    #[test]
    fn full_remote_attestation_flow() {
        let mut rng = SeededRandom::new(9);
        let cpu = SgxCpu::new(&mut rng);
        let qe = QuotingEnclave::provision(&cpu, &mut rng);
        let mut ias = AttestationService::new();
        ias.register_device(qe.device_public_key().clone());

        let e = make_enclave(&cpu);
        let mut data = [0u8; 64];
        data[0] = 0xAB;
        let report = ereport(&e, &TargetInfo { mrenclave: QE_MEASUREMENT }, data).unwrap();
        let quote = qe.quote(&report).unwrap();
        ias.verify_quote(&quote).unwrap();
        assert_eq!(quote.mrenclave, e.mrenclave());
        assert_eq!(quote.report_data[0], 0xAB);
    }

    #[test]
    fn report_for_other_target_not_quotable() {
        let mut rng = SeededRandom::new(9);
        let cpu = SgxCpu::new(&mut rng);
        let qe = QuotingEnclave::provision(&cpu, &mut rng);
        let e = make_enclave(&cpu);
        let report = ereport(&e, &TargetInfo { mrenclave: [0u8; 32] }, [0u8; 64]).unwrap();
        assert_eq!(qe.quote(&report), Err(SgxError::ReportMacMismatch));
    }

    #[test]
    fn unknown_device_rejected() {
        let mut rng = SeededRandom::new(9);
        let cpu = SgxCpu::new(&mut rng);
        let qe = QuotingEnclave::provision(&cpu, &mut rng);
        let ias = AttestationService::new(); // nothing registered
        let e = make_enclave(&cpu);
        let report = ereport(&e, &TargetInfo { mrenclave: QE_MEASUREMENT }, [0u8; 64]).unwrap();
        let quote = qe.quote(&report).unwrap();
        assert_eq!(ias.verify_quote(&quote), Err(SgxError::BadQuote));
    }

    #[test]
    fn quote_encoding_is_canonical() {
        let mut rng = SeededRandom::new(9);
        let cpu = SgxCpu::new(&mut rng);
        let qe = QuotingEnclave::provision(&cpu, &mut rng);
        let e = make_enclave(&cpu);
        let report = ereport(&e, &TargetInfo { mrenclave: QE_MEASUREMENT }, [0u8; 64]).unwrap();
        let quote = qe.quote(&report).unwrap();
        let bytes = quote.to_bytes();
        assert_eq!(Quote::from_bytes(&bytes), Some(quote));
        // Appended garbage must not parse back to the original quote.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(Quote::from_bytes(&padded), None);
        padded.extend_from_slice(&[0xFF; 16]);
        assert_eq!(Quote::from_bytes(&padded), None);
        // Truncation anywhere must fail too.
        for cut in [bytes.len() - 1, 131, 64, 0] {
            assert_eq!(Quote::from_bytes(&bytes[..cut]), None);
        }
    }

    #[test]
    fn tampered_quote_rejected() {
        let mut rng = SeededRandom::new(9);
        let cpu = SgxCpu::new(&mut rng);
        let qe = QuotingEnclave::provision(&cpu, &mut rng);
        let mut ias = AttestationService::new();
        ias.register_device(qe.device_public_key().clone());
        let e = make_enclave(&cpu);
        let report = ereport(&e, &TargetInfo { mrenclave: QE_MEASUREMENT }, [0u8; 64]).unwrap();
        let mut quote = qe.quote(&report).unwrap();
        quote.mrenclave[0] ^= 1; // claim to be a different enclave
        assert_eq!(ias.verify_quote(&quote), Err(SgxError::BadQuote));
    }
}
