//! `DES` benchmark (ported from tarequeh/DES): table-driven DES — key
//! schedule, all permutations, the Feistel network — in EV64 assembly,
//! differentially tested against [`elide_crypto::des::Des`].

use crate::harness::App;
use elide_crypto::des::{Des, E, FP, IP, P, PC1, PC2, SBOX, SHIFTS};
use std::collections::HashMap;
use std::fmt::Write as _;

fn byte_table(name: &str, vals: &[u8]) -> String {
    let mut s = format!("{name}:\n");
    for chunk in vals.chunks(16) {
        s.push_str("    .byte ");
        for (i, v) in chunk.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            write!(s, "{v}").expect("write");
        }
        s.push('\n');
    }
    s
}

/// Builds the guest program.
pub fn app() -> App {
    let mut tables = String::new();
    tables.push_str(&byte_table("des_ip", &IP));
    tables.push_str(&byte_table("des_fp", &FP));
    tables.push_str(&byte_table("des_e", &E));
    tables.push_str(&byte_table("des_p", &P));
    tables.push_str(&byte_table("des_pc1", &PC1));
    tables.push_str(&byte_table("des_pc2", &PC2));
    tables.push_str(&byte_table("des_shifts", &SHIFTS));
    let flat_sbox: Vec<u8> = SBOX.iter().flatten().copied().collect();
    tables.push_str(&byte_table("des_sbox", &flat_sbox));

    let asm = format!(
        r#"
.section text
; des_permute(src = r1, table = r2, nbits = r3, inbits = r4) -> r0
.func des_permute
    movi r5, 0               ; out
    movi r6, 0               ; i
.loop:
    bgeu r6, r3, .done
    add  r7, r2, r6
    ld8u r7, [r7]            ; table[i], 1-based
    sub  r7, r4, r7
    shru r8, r1, r7
    andi r8, r8, 1
    shli r5, r5, 1
    or   r5, r5, r8
    addi r6, r6, 1
    jmp  .loop
.done:
    mov  r0, r5
    ret
.endfunc

; des_set_key(key = r2, 8 bytes) -> r0 = 0
.global des_set_key
.func des_set_key
    ; load key big-endian into r1
    movi r1, 0
    movi r5, 0
.keyload:
    movi r6, 8
    bgeu r5, r6, .loaded
    add  r6, r2, r5
    ld8u r7, [r6]
    shli r1, r1, 8
    or   r1, r1, r7
    addi r5, r5, 1
    jmp  .keyload
.loaded:
    la   r2, des_pc1
    movi r3, 56
    movi r4, 64
    call des_permute
    ; c = top 28 bits, d = low 28 bits
    shrui r10, r0, 28        ; c
    li   r11, 0xFFFFFFF
    and  r11, r0, r11        ; d
    movi r12, 0              ; round
.kloop:
    movi r9, 16
    bgeu r12, r9, .kdone
    ; shift amount
    la   r9, des_shifts
    add  r9, r9, r12
    ld8u r9, [r9]
    ; rotate c and d left by r9 within 28 bits
    li   r14, 0xFFFFFFF
    shl  r5, r10, r9
    movi r6, 28
    sub  r6, r6, r9
    shru r7, r10, r6
    or   r5, r5, r7
    and  r10, r5, r14
    shl  r5, r11, r9
    shru r7, r11, r6
    or   r5, r5, r7
    and  r11, r5, r14
    ; combined = (c << 28) | d  -> PC2 -> subkey
    shli r1, r10, 28
    or   r1, r1, r11
    la   r2, des_pc2
    movi r3, 48
    movi r4, 56
    push r10
    push r11
    push r12
    call des_permute
    pop  r12
    pop  r11
    pop  r10
    la   r9, des_subkeys
    shli r5, r12, 3
    add  r9, r9, r5
    st64 r0, [r9]
    addi r12, r12, 1
    jmp  .kloop
.kdone:
    movi r0, 0
    ret
.endfunc

; des_feistel(half = r1, subkey held in des_cur_subkey) -> r0
.func des_feistel
    la   r2, des_e
    movi r3, 48
    movi r4, 32
    call des_permute
    la   r2, des_cur_subkey
    ld64 r2, [r2]
    xor  r1, r0, r2          ; x = E(r) ^ k (48 bits)
    movi r5, 0               ; sbox output accumulator
    movi r6, 0               ; sbox index
.sloop:
    movi r7, 8
    bgeu r6, r7, .sdone
    ; shift = 42 - 6i
    movi r7, 42
    shli r8, r6, 2
    add  r8, r8, r6
    add  r8, r8, r6          ; 6i
    sub  r7, r7, r8
    shru r7, r1, r7
    andi r7, r7, 63          ; six
    shrui r8, r7, 4
    andi r8, r8, 2
    andi r9, r7, 1
    or   r8, r8, r9          ; row
    shrui r9, r7, 1
    andi r9, r9, 15          ; col
    shli r10, r6, 6
    shli r8, r8, 4
    add  r10, r10, r8
    add  r10, r10, r9
    la   r8, des_sbox
    add  r10, r8, r10
    ld8u r10, [r10]
    shli r5, r5, 4
    or   r5, r5, r10
    addi r6, r6, 1
    jmp  .sloop
.sdone:
    mov  r1, r5
    la   r2, des_p
    movi r3, 32
    movi r4, 32
    call des_permute
    ret
.endfunc

; des_crypt_common(block = r1, direction = r2: 0 encrypt / 1 decrypt) -> r0
.func des_crypt_common
    push r2
    la   r2, des_ip
    movi r3, 64
    movi r4, 64
    call des_permute
    pop  r13                 ; direction
    shrui r10, r0, 32        ; l
    movi r11, -1
    shrui r11, r11, 32
    and  r11, r0, r11        ; r
    movi r12, 0              ; round
.rloop:
    movi r9, 16
    bgeu r12, r9, .rdone
    ; subkey index: encrypt -> i, decrypt -> 15 - i
    mov  r9, r12
    movi r14, 0
    beq  r13, r14, .fwd
    movi r9, 15
    sub  r9, r9, r12
.fwd:
    shli r9, r9, 3
    la   r14, des_subkeys
    add  r9, r14, r9
    ld64 r9, [r9]
    la   r14, des_cur_subkey
    st64 r9, [r14]
    mov  r1, r11
    push r10
    push r11
    push r12
    push r13
    call des_feistel
    pop  r13
    pop  r12
    pop  r11
    pop  r10
    xor  r9, r10, r0         ; next r = l ^ f(r, k)
    mov  r10, r11
    mov  r11, r9
    addi r12, r12, 1
    jmp  .rloop
.rdone:
    ; preoutput = (r16, l16), then FP
    shli r1, r11, 32
    or   r1, r1, r10
    la   r2, des_fp
    movi r3, 64
    movi r4, 64
    call des_permute
    ret
.endfunc

; des_encrypt_block(in = r2 [8 bytes], out = r4 [8 bytes]) -> r0 = 8
.global des_encrypt_block
.func des_encrypt_block
    la   r6, des_out_ptr
    st64 r4, [r6]
    movi r1, 0
    movi r5, 0
.load:
    movi r6, 8
    bgeu r5, r6, .go
    add  r6, r2, r5
    ld8u r7, [r6]
    shli r1, r1, 8
    or   r1, r1, r7
    addi r5, r5, 1
    jmp  .load
.go:
    movi r2, 0
    call des_crypt_common
    call des_store_result
    movi r0, 8
    ret
.endfunc

; des_decrypt_block(in = r2 [8 bytes], out = r4 [8 bytes]) -> r0 = 8
.global des_decrypt_block
.func des_decrypt_block
    la   r6, des_out_ptr
    st64 r4, [r6]
    movi r1, 0
    movi r5, 0
.load:
    movi r6, 8
    bgeu r5, r6, .go
    add  r6, r2, r5
    ld8u r7, [r6]
    shli r1, r1, 8
    or   r1, r1, r7
    addi r5, r5, 1
    jmp  .load
.go:
    movi r2, 1
    call des_crypt_common
    call des_store_result
    movi r0, 8
    ret
.endfunc

; des_store_result: writes r0 big-endian to des_out_ptr
.func des_store_result
    la   r11, des_out_ptr
    ld64 r11, [r11]
    movi r5, 0
.store:
    movi r6, 8
    bgeu r5, r6, .done
    movi r7, 56
    shli r8, r5, 3
    sub  r7, r7, r8
    shru r7, r0, r7
    andi r7, r7, 0xff
    add  r8, r11, r5
    st8  r7, [r8]
    addi r5, r5, 1
    jmp  .store
.done:
    ret
.endfunc

.section rodata
.align 8
{tables}

.section bss
.align 8
des_out_ptr:
    .zero 8
des_cur_subkey:
    .zero 8
des_subkeys:
    .zero 128
"#
    );
    App { name: "DES", asm, ecalls: vec!["des_set_key", "des_encrypt_block", "des_decrypt_block"] }
}

/// Encrypt/decrypt a batch of blocks under several keys, against the
/// reference. Returns block operations performed.
///
/// # Panics
///
/// Panics on divergence from the reference.
pub fn workload(rt: &mut elide_enclave::EnclaveRuntime, idx: &HashMap<String, u64>) -> u64 {
    let set_key = idx["des_set_key"];
    let encrypt = idx["des_encrypt_block"];
    let decrypt = idx["des_decrypt_block"];
    let mut ops = 0;
    for key_seed in 0u8..3 {
        let key: [u8; 8] = core::array::from_fn(|i| (i as u8).wrapping_mul(43) ^ key_seed);
        let reference = Des::new(&key);
        rt.ecall(set_key, &key, 0).expect("set_key ecall");
        for block_seed in 0u64..8 {
            let block = block_seed.wrapping_mul(0x0123_4567_89AB_CDEF).wrapping_add(7);
            let expect = reference.encrypt_block(block);
            let r = rt.ecall(encrypt, &block.to_be_bytes(), 8).expect("encrypt ecall");
            let got = u64::from_be_bytes(r.output[..8].try_into().expect("8 bytes"));
            assert_eq!(got, expect, "DES encrypt mismatch key {key_seed}");
            let r = rt.ecall(decrypt, &expect.to_be_bytes(), 8).expect("decrypt ecall");
            let got = u64::from_be_bytes(r.output[..8].try_into().expect("8 bytes"));
            assert_eq!(got, block, "DES decrypt mismatch key {key_seed}");
            ops += 2;
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{launch_plain, launch_protected};
    use elide_core::sanitizer::DataPlacement;

    #[test]
    fn classic_vector_in_guest() {
        let app = app();
        let mut p = launch_plain(&app, 70).unwrap();
        let key = [0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1];
        p.runtime.ecall(p.indices["des_set_key"], &key, 0).unwrap();
        let r = p
            .runtime
            .ecall(p.indices["des_encrypt_block"], &0x0123456789ABCDEFu64.to_be_bytes(), 8)
            .unwrap();
        assert_eq!(u64::from_be_bytes(r.output[..8].try_into().unwrap()), 0x85E813540F0AB405);
    }

    #[test]
    fn guest_matches_reference_batch() {
        let app = app();
        let mut p = launch_plain(&app, 71).unwrap();
        assert_eq!(workload(&mut p.runtime, &p.indices), 48);
    }

    #[test]
    fn protected_roundtrip() {
        let app = app();
        let mut p = launch_protected(&app, DataPlacement::LocalEncrypted, 72).unwrap();
        assert!(p.app.runtime.ecall(p.indices["des_set_key"], &[0u8; 8], 0).is_err());
        p.restore().unwrap();
        workload(&mut p.app.runtime, &p.indices);
    }
}
