//! Tour of Elc, the high-level language of the EV64 toolchain: write the
//! secret logic in Elc, compile it to assembly, protect it with SgxElide,
//! and run it — the "compiled C" developer experience of the paper.
//!
//! Run with: `cargo run --example elc_tour`

use sgxelide::apps::harness::{launch_protected, App};
use sgxelide::core::sanitizer::DataPlacement;
use sgxelide::vm::elc;

const PRICING_MODEL: &str = "
// A trade-secret pricing model: volume discounts with a secret
// breakpoint schedule, the kind of business logic §1 wants hidden.
fn unit_price(qty) {
    let base = 1000;
    if (qty >= 500) { return base - 275; }
    if (qty >= 100) { return base - 150; }
    if (qty >= 10)  { return base - 40; }
    return base;
}

fn quote(inp, len, outp, cap) {
    // input: u64 quantity; output: u64 total price
    let qty = load64(inp);
    let total = qty * unit_price(qty);
    // Loyalty hash mixed in so competitors cannot tabulate the schedule
    // from a handful of quotes.
    let h = qty;
    h = (h ^ (h >> 33)) * 0xFF51AFD7ED558CCD;
    h = (h ^ (h >> 33)) & 0xFF;
    total = total - (total * h) / 100000;
    store64(outp, total);
    return total;
}
";

fn reference_quote(qty: u64) -> u64 {
    let base = 1000u64;
    let unit = if qty >= 500 {
        base - 275
    } else if qty >= 100 {
        base - 150
    } else if qty >= 10 {
        base - 40
    } else {
        base
    };
    let total = qty.wrapping_mul(unit);
    let mut h = qty;
    h = (h ^ (h >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h = (h ^ (h >> 33)) & 0xFF;
    total - (total.wrapping_mul(h)) / 100_000
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("[1] compiling the Elc pricing model to EV64 assembly");
    let asm = elc::compile(PRICING_MODEL)?;
    println!("    {} lines of generated assembly", asm.lines().count());
    for line in asm.lines().take(8) {
        println!("    | {line}");
    }

    println!("[2] protecting with SgxElide (local encrypted data) and launching");
    let app = App { name: "pricing", asm, ecalls: vec!["quote", "unit_price"] };
    let mut p = launch_protected(&app, DataPlacement::LocalEncrypted, 0xE1C)?;

    println!("[3] before restore, the pricing model is dead:");
    match p.app.runtime.ecall(p.indices["quote"], &100u64.to_le_bytes(), 8) {
        Err(e) => println!("    {e}"),
        Ok(_) => println!("    unexpected success"),
    }

    p.restore()?;
    println!("[4] after restore, quoting works and matches the reference:");
    for qty in [1u64, 9, 10, 99, 100, 499, 500, 10_000] {
        let r = p.app.runtime.ecall(p.indices["quote"], &qty.to_le_bytes(), 8)?;
        let expect = reference_quote(qty);
        println!("    quote({qty:>6}) = {:>12}  (reference {expect})", r.status);
        assert_eq!(r.status, expect);
    }
    Ok(())
}
