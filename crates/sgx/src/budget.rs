//! Bounded-EPC budget: caps the number of resident regular pages per
//! enclave and pages the excess out with `EWB`/`ELDU` ([`crate::paging`]).
//!
//! Real EPCs are small (the paper-era parts expose ~93 MiB usable), so a
//! host packing hundreds of enclaves oversubscribes it and the kernel
//! pages enclave memory like any other. This module models that regime:
//! [`EpcBudget::enforce`] evicts least-recently-used victims (ordered by
//! the access stamps [`Enclave`] maintains on every load, store and
//! execute entry) until the enclave fits its cap, and
//! [`EpcBudget::page_in`] transparently reloads an evicted page on the
//! next touch. Sealed blobs stay versioned, so a rollback of an evicted
//! page is detected exactly as in explicit paging.
//!
//! For chaos testing, [`EpcBudget::set_tamper`] arms a seeded injector
//! that corrupts a fraction of eviction blobs in flight — the reload path
//! must then surface the typed paging errors instead of loading bad bytes.

use crate::enclave::Enclave;
use crate::epc::{EpcPage, PageType, PAGE_SIZE};
use crate::error::SgxError;
use crate::faults::EpcFaultInjector;
use crate::paging::{EvictedPage, PagingManager};
use elide_crypto::rng::{RandomSource, SeededRandom};
use std::collections::HashMap;

/// Eviction/reload counters, exposed for benches and tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EpcBudgetStats {
    /// Pages evicted under budget pressure (clean drops + EWBs).
    pub evictions: u64,
    /// Clean evictions: the page matched its backing snapshot (never
    /// written since capture), so it was dropped without sealing.
    pub clean_drops: u64,
    /// Pages transparently brought back on touch (ELDU of a sealed blob
    /// or a plain copy from the backing snapshot).
    pub reloads: u64,
    /// Reload attempts rejected by the integrity/freshness checks
    /// (only non-zero with tampering armed).
    pub reload_failures: u64,
    /// Eviction blobs corrupted by the armed tamperer — how much chaos
    /// actually fired, for vacuity checks in the chaos suite.
    pub tampers: u64,
}

/// Seeded blob-tampering hook for eviction-triggered EWB/ELDU cycles.
struct Tamper {
    injector: EpcFaultInjector,
    dice: SeededRandom,
    /// Probability of corrupting each eviction blob, in parts per million.
    ppm: u32,
}

/// A per-enclave resident-page cap with LRU eviction.
///
/// The budget owns the [`PagingManager`] (version array + paging key) and
/// the untrusted store of evicted blobs, mirroring how an OS enclave
/// driver keeps swapped pages plus VA slots on behalf of the enclave.
pub struct EpcBudget {
    cap: usize,
    pager: PagingManager,
    evicted: HashMap<u64, EvictedPage>,
    /// Clean-page backing snapshots: page contents + the generation stamp
    /// at capture time. A victim whose current generation still matches
    /// was never written since capture, so it can be dropped without EWB
    /// sealing and re-sourced by plain copy — the dominant case right
    /// after a (warm) launch, when every page is pristine image content.
    /// Lives in the same trust class as the pager's version array: PRM-
    /// resident paging metadata the enclave driver maintains.
    backing: HashMap<u64, (EpcPage, u64)>,
    rng: SeededRandom,
    tamper: Option<Tamper>,
    stats: EpcBudgetStats,
}

impl std::fmt::Debug for EpcBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpcBudget")
            .field("cap", &self.cap)
            .field("evicted", &self.evicted.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl EpcBudget {
    /// Creates a budget allowing at most `cap_pages` resident regular
    /// pages (clamped to ≥ 1 — a zero cap could never run anything).
    pub fn new(cap_pages: usize, rng: &mut dyn RandomSource) -> Self {
        let mut seed = [0u8; 8];
        rng.fill(&mut seed);
        EpcBudget {
            cap: cap_pages.max(1),
            pager: PagingManager::new(rng),
            evicted: HashMap::new(),
            backing: HashMap::new(),
            rng: SeededRandom::new(u64::from_le_bytes(seed)),
            tamper: None,
            stats: EpcBudgetStats::default(),
        }
    }

    /// The resident-page cap.
    pub fn cap_pages(&self) -> usize {
        self.cap
    }

    /// Eviction/reload counters so far.
    pub fn stats(&self) -> EpcBudgetStats {
        self.stats
    }

    /// Number of pages currently evicted to sealed blobs.
    pub fn evicted_pages(&self) -> usize {
        self.evicted.len()
    }

    /// Whether the page at `page_off` is held evicted by this budget.
    pub fn has_evicted(&self, page_off: u64) -> bool {
        self.evicted.contains_key(&page_off)
    }

    /// Arms seeded blob tampering: each future eviction blob is corrupted
    /// with probability `ppm` parts-per-million, drawing uniformly from
    /// every [`crate::faults::EwbTamper`] variant. Chaos-test hook; off
    /// by default.
    pub fn set_tamper(&mut self, seed: u64, ppm: u32) {
        self.tamper = Some(Tamper {
            injector: EpcFaultInjector::new(seed),
            dice: SeededRandom::new(seed ^ 0x9E37_79B9_7F4A_7C15),
            ppm,
        });
    }

    /// Snapshots every resident regular page as clean backing. Evictions
    /// of pages never written after this capture skip EWB sealing (a
    /// clean drop), and their reloads are plain copies instead of ELDU
    /// decrypts. Call right after (warm-)launch, when the whole resident
    /// set is pristine image content; re-capturing later refreshes the
    /// snapshots to the pages' current contents.
    pub fn capture_backing(&mut self, enclave: &Enclave) {
        for page_off in enclave.resident_pages() {
            if let Some((page, gen)) = enclave.page_snapshot(page_off) {
                if page.ptype == PageType::Reg {
                    self.backing.insert(page_off, (page, gen));
                }
            }
        }
    }

    /// Evicts one victim: a clean drop if its backing snapshot is still
    /// current, a (possibly tampered) EWB otherwise.
    fn evict_one(&mut self, enclave: &mut Enclave, victim: u64) -> Result<(), SgxError> {
        let clean = self
            .backing
            .get(&victim)
            .is_some_and(|(_, gen)| enclave.page_generation(enclave.base() + victim) == Some(*gen));
        if clean {
            enclave.page_evict(victim);
            self.stats.clean_drops += 1;
        } else {
            let mut blob = self.pager.ewb(enclave, victim, &mut self.rng)?;
            if let Some(t) = &mut self.tamper {
                if t.dice.next_u64() % 1_000_000 < u64::from(t.ppm) {
                    t.injector.tamper_evicted_random(&mut blob);
                    self.stats.tampers += 1;
                }
            }
            self.evicted.insert(victim, blob);
        }
        self.stats.evictions += 1;
        Ok(())
    }

    /// Evicts LRU victims until the enclave's resident regular pages fit
    /// the cap. Returns the number of pages evicted. Transparent to the
    /// guest: the next touch of an evicted page reloads it via
    /// [`EpcBudget::page_in`].
    ///
    /// # Errors
    ///
    /// Propagates paging errors (e.g. a victim vanishing mid-eviction);
    /// the budget's own bookkeeping stays consistent on failure.
    pub fn enforce(&mut self, enclave: &mut Enclave) -> Result<usize, SgxError> {
        let mut out = 0;
        while enclave.resident_reg_pages() > self.cap {
            let Some(victim) = enclave.coldest_resident_page() else { break };
            self.evict_one(enclave, victim)?;
            out += 1;
        }
        Ok(out)
    }

    /// Reloads the evicted page containing `vaddr`, if this budget holds
    /// it, then re-enforces the cap (the fresh access stamp from the
    /// reload protects the just-loaded page from immediate re-eviction).
    /// Returns `Ok(false)` when the address is not an evicted page — the
    /// caller's fault is genuine and should surface as usual.
    ///
    /// # Errors
    ///
    /// * [`SgxError::SealAuthFailed`] / [`SgxError::ReplayDetected`] /
    ///   [`SgxError::OutOfRange`] — the stored blob failed the integrity
    ///   or freshness checks (tampering). The blob stays held so the
    ///   failure is deterministic, and `reload_failures` is counted.
    pub fn page_in(&mut self, enclave: &mut Enclave, vaddr: u64) -> Result<bool, SgxError> {
        let Some(off) = vaddr.checked_sub(enclave.base()) else { return Ok(false) };
        if off >= enclave.size() {
            return Ok(false);
        }
        let page_off = off & !(PAGE_SIZE - 1);
        if let Some(blob) = self.evicted.get(&page_off) {
            return match self.pager.eldu(enclave, blob) {
                Ok(()) => {
                    self.evicted.remove(&page_off);
                    self.stats.reloads += 1;
                    self.enforce(enclave)?;
                    Ok(true)
                }
                Err(e) => {
                    self.stats.reload_failures += 1;
                    Err(e)
                }
            };
        }
        // Clean-dropped page: re-source from the backing snapshot, then
        // refresh the snapshot's generation to the restored page's so it
        // stays clean for the next eviction round.
        if enclave.page_generation(vaddr).is_none() {
            if let Some((page, _)) = self.backing.get(&page_off) {
                let page = page.clone();
                enclave.page_restore(page_off, page)?;
                let gen = enclave
                    .page_generation(enclave.base() + page_off)
                    .expect("page resident right after restore");
                self.backing.get_mut(&page_off).expect("checked above").1 = gen;
                self.stats.reloads += 1;
                self.enforce(enclave)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Evicts **every** resident regular page — the whole-enclave
    /// suspend used when the pool manager puts an enclave to sealed
    /// sleep. Returns the number of pages evicted.
    ///
    /// # Errors
    ///
    /// Propagates paging errors; already-evicted pages keep their blobs.
    pub fn evict_all(&mut self, enclave: &mut Enclave) -> Result<usize, SgxError> {
        let mut out = 0;
        while let Some(victim) = enclave.coldest_resident_page() {
            self.evict_one(enclave, victim)?;
            out += 1;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::{AccessKind, SgxCpu};
    use crate::epc::{PagePerms, PageType};
    use crate::sigstruct::SigStruct;
    use elide_crypto::rng::SeededRandom;
    use elide_crypto::rsa::RsaKeyPair;

    const BASE: u64 = 0x100000;

    /// Enclave with `n` RW data pages, initialized.
    fn setup(n: usize) -> (Enclave, SeededRandom) {
        let mut rng = SeededRandom::new(99);
        let cpu = SgxCpu::new(&mut rng);
        let mut e = cpu.ecreate(BASE, n as u64 * PAGE_SIZE).unwrap();
        for i in 0..n {
            let addr = BASE + i as u64 * PAGE_SIZE;
            e.eadd(addr, &[i as u8; 4096], PagePerms::RW, PageType::Reg).unwrap();
            for c in 0..16 {
                e.eextend(addr + c * 256).unwrap();
            }
        }
        let kp = RsaKeyPair::generate(512, &mut SeededRandom::new(5));
        let sig = SigStruct::sign(&kp, e.current_measurement().unwrap(), 1, 1).unwrap();
        e.einit(&sig).unwrap();
        (e, rng)
    }

    #[test]
    fn enforce_respects_cap_and_counts() {
        let (mut e, mut rng) = setup(8);
        let mut b = EpcBudget::new(3, &mut rng);
        let evicted = b.enforce(&mut e).unwrap();
        assert_eq!(evicted, 5);
        assert_eq!(e.resident_reg_pages(), 3);
        assert_eq!(b.evicted_pages(), 5);
        assert_eq!(b.stats().evictions, 5);
        // Idempotent at the cap.
        assert_eq!(b.enforce(&mut e).unwrap(), 0);
    }

    #[test]
    fn lru_victim_ordering() {
        let (mut e, mut rng) = setup(4);
        // Touch pages 1..4, leaving page 0 coldest.
        for i in 1..4u64 {
            e.load_prim(BASE + i * PAGE_SIZE, 1).unwrap();
        }
        let mut b = EpcBudget::new(3, &mut rng);
        b.enforce(&mut e).unwrap();
        assert!(b.has_evicted(0), "coldest page (0) must be the victim");
        assert_eq!(e.resident_reg_pages(), 3);
    }

    #[test]
    fn transparent_reload_on_touch() {
        let (mut e, mut rng) = setup(4);
        for i in 1..4u64 {
            e.load_prim(BASE + i * PAGE_SIZE, 1).unwrap();
        }
        let mut b = EpcBudget::new(2, &mut rng);
        b.enforce(&mut e).unwrap();
        // Page 0 evicted: direct access faults…
        assert!(e.load_prim(BASE, 1).is_none());
        // …but page_in restores the exact bytes, and the cap holds by
        // evicting someone else.
        assert!(b.page_in(&mut e, BASE + 17).unwrap());
        assert_eq!(e.read(BASE, 2, AccessKind::Read).unwrap(), vec![0, 0]);
        assert_eq!(e.resident_reg_pages(), 2);
        assert_eq!(b.stats().reloads, 1);
        // A non-evicted genuine fault is not the budget's.
        assert!(!b.page_in(&mut e, BASE + 100 * PAGE_SIZE).unwrap());
    }

    #[test]
    fn reload_keeps_lru_page_warm() {
        let (mut e, mut rng) = setup(3);
        let mut b = EpcBudget::new(1, &mut rng);
        b.enforce(&mut e).unwrap();
        // Ping-pong across all three pages: each reload evicts the then-
        // coldest page, never the one just brought in.
        for i in 0..12u64 {
            let addr = BASE + (i % 3) * PAGE_SIZE;
            if e.load_prim(addr, 1).is_none() {
                assert!(b.page_in(&mut e, addr).unwrap());
                assert!(e.load_prim(addr, 1).is_some(), "page resident after page_in");
            }
        }
        assert_eq!(e.resident_reg_pages(), 1);
    }

    #[test]
    fn evict_all_then_reload_everything() {
        let (mut e, mut rng) = setup(5);
        let mut b = EpcBudget::new(64, &mut rng);
        assert_eq!(b.evict_all(&mut e).unwrap(), 5);
        assert_eq!(e.resident_reg_pages(), 0);
        for i in 0..5u64 {
            assert!(b.page_in(&mut e, BASE + i * PAGE_SIZE).unwrap());
            assert_eq!(e.read(BASE + i * PAGE_SIZE, 1, AccessKind::Read).unwrap(), vec![i as u8]);
        }
        assert_eq!(b.evicted_pages(), 0);
    }

    #[test]
    fn clean_pages_drop_without_sealing_and_dirty_pages_ewb() {
        let (mut e, mut rng) = setup(4);
        let mut b = EpcBudget::new(2, &mut rng);
        b.capture_backing(&e);
        // Dirty page 3 (most recently used, stays resident); 0 and 1 are
        // clean victims — dropped, not sealed.
        e.store_prim(BASE + 3 * PAGE_SIZE, 1, 0xAB).unwrap();
        b.enforce(&mut e).unwrap();
        assert_eq!(b.stats().evictions, 2);
        assert_eq!(b.stats().clean_drops, 2);
        assert_eq!(b.evicted_pages(), 0, "clean drops must not hold sealed blobs");
        // Reload of a clean drop is a plain copy with the original bytes.
        assert!(b.page_in(&mut e, BASE).unwrap());
        assert_eq!(e.read(BASE, 1, AccessKind::Read).unwrap(), vec![0]);
        // The restored page is still clean: evicting it again stays free.
        let drops = b.stats().clean_drops;
        b.enforce(&mut e).unwrap();
        assert!(b.stats().clean_drops > drops - 1);
        // Now dirty the restored page's successor cycle: write page 3 out
        // by making it coldest. Writes make a page a sealing (EWB) victim.
        e.store_prim(BASE, 1, 1).unwrap(); // page 0 now dirty and warm
        e.load_prim(BASE + PAGE_SIZE, 1); // miss (evicted) — ignore
        b.page_in(&mut e, BASE + PAGE_SIZE).unwrap();
        assert!(b.evicted_pages() > 0 || b.stats().clean_drops > drops, "eviction happened");
    }

    #[test]
    fn written_page_is_sealed_not_dropped() {
        let (mut e, mut rng) = setup(3);
        let mut b = EpcBudget::new(1, &mut rng);
        b.capture_backing(&e);
        // Write page 0, then make it the eviction victim by touching 1, 2.
        e.store_prim(BASE, 1, 0xEE).unwrap();
        e.load_prim(BASE + PAGE_SIZE, 1).unwrap();
        e.load_prim(BASE + 2 * PAGE_SIZE, 1).unwrap();
        b.enforce(&mut e).unwrap();
        assert!(b.has_evicted(0), "dirty page must be EWB-sealed");
        // Its reload is an ELDU that brings back the written byte.
        assert!(b.page_in(&mut e, BASE).unwrap());
        assert_eq!(e.read(BASE, 1, AccessKind::Read).unwrap(), vec![0xEE]);
    }

    #[test]
    fn tampered_eviction_cycle_surfaces_typed_error() {
        let (mut e, mut rng) = setup(4);
        let mut b = EpcBudget::new(1, &mut rng);
        b.set_tamper(1234, 1_000_000); // corrupt every blob
        b.enforce(&mut e).unwrap();
        let mut failures = 0;
        for page in 0..4u64 {
            if b.has_evicted(page * PAGE_SIZE) {
                match b.page_in(&mut e, BASE + page * PAGE_SIZE) {
                    Err(
                        SgxError::SealAuthFailed
                        | SgxError::ReplayDetected
                        | SgxError::OutOfRange { .. },
                    ) => failures += 1,
                    Err(other) => panic!("unexpected error {other:?}"),
                    Ok(_) => {}
                }
            }
        }
        assert!(failures > 0, "100% tamper rate must produce typed failures");
        assert_eq!(b.stats().reload_failures, failures);
        assert_eq!(
            b.stats().tampers,
            b.stats().evictions,
            "every EWB blob must have been tampered at 100% ppm"
        );
    }
}
