//! Regenerates **Figures 3 and 4** of the paper: end-to-end runtime of
//! each non-game benchmark (enclave creation + built-in test suite),
//! normalized to the plain SGX build, with remote (Figure 3) and local
//! (Figure 4) secret data. Offline steps (sanitize, sign, provisioning)
//! happen before timing, exactly as they do for a shipped binary.
//!
//! Expected shape: "w/ SgxElide" within a few percent of "w/ SGX", since
//! the only added runtime cost is the one-time restoration.

use elide_bench::{figure_apps, prepare_elide, prepare_plain, stats};
use elide_core::sanitizer::DataPlacement;

fn main() {
    const RUNS: usize = 10;
    // Workload iterations per run, sized so the suite dominates the runtime
    // (as in the paper, where the test suites run far longer than startup).
    fn reps(name: &str) -> usize {
        match name {
            "AES" => 10,
            "DES" => 6,
            "Sha1" | "Shas" => 40,
            _ => 400, // Crackme: each check is microseconds
        }
    }
    for (figure, placement, label) in [
        (3, DataPlacement::Remote, "remote data"),
        (4, DataPlacement::LocalEncrypted, "local data"),
    ] {
        println!("Figure {figure}: relative performance with {label} ({RUNS} runs)");
        println!(
            "{:<10} {:>12} {:>15} {:>10}",
            "Benchmark", "w/ SGX (ms)", "w/ SgxElide(ms)", "Relative"
        );
        for app in figure_apps() {
            let plain = prepare_plain(&app);
            let elide = prepare_elide(&app, placement);
            let r = reps(app.name);
            let p: Vec<f64> = (0..RUNS).map(|i| plain.run_seconds(100 + i as u64, r)).collect();
            let e: Vec<f64> = (0..RUNS).map(|i| elide.run_seconds(200 + i as u64, r)).collect();
            let ps = stats(&p);
            let es = stats(&e);
            println!(
                "{:<10} {:>12.2} {:>15.2} {:>9.1}%",
                app.name,
                ps.mean_ms,
                es.mean_ms,
                es.mean_ms / ps.mean_ms * 100.0
            );
        }
        println!();
    }
}
