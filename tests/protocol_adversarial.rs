//! Adversarial protocol tests: an active attacker on the untrusted host or
//! network. The paper's claim (§3.1) is that such an attacker achieves at
//! most denial of service — these tests pin that down.
//!
//! Every tamper scenario runs against *both* transports (in-process and
//! loopback TCP): the layered service serves them through the same
//! framing/session code, so the security argument must hold identically.

use sgxelide::apps::crackme;
use sgxelide::core::api::{protect, Mode, Platform};
use sgxelide::core::elide_asm::{request, restore_status, ELIDE_ASM};
use sgxelide::core::protocol::{InProcessTransport, TcpTransport, Transport};
use sgxelide::core::restore::{elide_restore, install_elide_ocalls, new_sealed_store, ElideFiles};
use sgxelide::core::sanitizer::DataPlacement;
use sgxelide::core::server::AuthServer;
use sgxelide::core::service::{serve, ServiceConfig};
use sgxelide::core::transport::tcp::TcpAcceptor;
use sgxelide::core::{ElideError, ServerError};
use sgxelide::crypto::rng::SeededRandom;
use sgxelide::crypto::rsa::RsaKeyPair;
use sgxelide::enclave::image::EnclaveImageBuilder;
use sgxelide::sgx::quote::AttestationService;
use std::sync::{Arc, Mutex};

fn build_simple() -> Vec<u8> {
    let mut b = EnclaveImageBuilder::new();
    b.source(ELIDE_ASM)
        .source(".section text\n.global s\n.func s\n    movi r0, 9\n    ret\n.endfunc\n")
        .ecall("s")
        .ecall("elide_restore");
    b.build().unwrap()
}

/// A transport wrapper that lets the attacker tamper with responses,
/// generic over the underlying transport.
struct Mitm<T: Transport, F: FnMut(u8, Vec<u8>) -> Vec<u8>> {
    inner: T,
    tamper: F,
}

impl<T: Transport, F: FnMut(u8, Vec<u8>) -> Vec<u8>> Transport for Mitm<T, F> {
    fn request(&mut self, req: u8, payload: &[u8]) -> Result<Vec<u8>, ElideError> {
        let resp = self.inner.request(req, payload)?;
        Ok((self.tamper)(req, resp))
    }
}

/// Which wire the attacker sits on.
#[derive(Clone, Copy, Debug)]
enum Wire {
    InProcess,
    Tcp,
}

const BOTH_WIRES: [Wire; 2] = [Wire::InProcess, Wire::Tcp];

/// Connects a client transport to `server` over the chosen wire. For TCP
/// a real service (acceptor + worker pool) is stood up; its threads exit
/// when the connection drops.
fn connect(server: &Arc<AuthServer>, wire: Wire) -> Box<dyn Transport + Send> {
    match wire {
        Wire::InProcess => Box::new(InProcessTransport::new(Arc::clone(server))),
        Wire::Tcp => {
            let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
            let addr = acceptor.local_addr().unwrap().to_string();
            let _handle = serve(
                acceptor,
                Arc::clone(server),
                ServiceConfig::default().with_workers(1).with_max_connections(Some(1)),
            );
            Box::new(TcpTransport::connect(&addr).expect("connect"))
        }
    }
}

fn setup_mitm<F>(
    tamper: F,
    wire: Wire,
    seed: u64,
) -> (sgxelide::core::api::LaunchedApp, Arc<AuthServer>)
where
    F: FnMut(u8, Vec<u8>) -> Vec<u8> + Send + 'static,
{
    let image = build_simple();
    let mut rng = SeededRandom::new(seed);
    let vendor = RsaKeyPair::generate(512, &mut rng);
    let package =
        protect(&image, &vendor, &Mode::Whitelist, DataPlacement::Remote, &mut rng).unwrap();
    let mut ias = AttestationService::new();
    let platform = Platform::provision(&mut rng, &mut ias);
    let server = Arc::new(package.make_server(ias));
    let transport = Arc::new(Mutex::new(Mitm { inner: connect(&server, wire), tamper }));
    let app = package.launch(&platform, transport, new_sealed_store(), seed ^ 5).unwrap();
    (app, server)
}

/// A MITM substituting its own DH public value for the server's: the
/// enclave derives a key the server never shares, so the metadata fails to
/// authenticate — denial of service, no secrets, no wrong code executed.
#[test]
fn mitm_key_substitution_is_dos_only() {
    for wire in BOTH_WIRES {
        let (mut app, _server) = setup_mitm(
            |req, mut resp| {
                if req as u64 == request::HANDSHAKE {
                    // Replace the server public value with garbage of the same
                    // length (a full MITM would use its own keypair; either
                    // way the enclave's channel key differs from the server's).
                    for b in resp.iter_mut() {
                        *b ^= 0xA5;
                    }
                }
                resp
            },
            wire,
            0x111,
        );
        let err = app.restore(1).unwrap_err();
        assert!(
            matches!(
                err,
                ElideError::RestoreFailed {
                    status: restore_status::META_FAILED | restore_status::BAD_SERVER_KEY
                }
            ),
            "{wire:?}: got {err:?}"
        );
        assert!(app.runtime.ecall(0, &[], 0).is_err(), "{wire:?}: secret must stay dead");
    }
}

/// Tampering with the encrypted META message on the wire is detected by
/// the channel's GCM tag.
#[test]
fn tampered_meta_message_rejected() {
    for wire in BOTH_WIRES {
        let (mut app, _server) = setup_mitm(
            |req, mut resp| {
                if req as u64 == request::META && !resp.is_empty() {
                    let mid = resp.len() / 2;
                    resp[mid] ^= 1;
                }
                resp
            },
            wire,
            0x222,
        );
        let err = app.restore(1).unwrap_err();
        assert_eq!(
            err,
            ElideError::RestoreFailed { status: restore_status::META_FAILED },
            "{wire:?}"
        );
    }
}

/// Tampering with the encrypted DATA message is likewise caught; no
/// partially-attacker-controlled code is ever written over the text.
#[test]
fn tampered_data_message_rejected() {
    for wire in BOTH_WIRES {
        let (mut app, _server) = setup_mitm(
            |req, mut resp| {
                if req as u64 == request::DATA && resp.len() > 40 {
                    resp[40] ^= 0xFF;
                }
                resp
            },
            wire,
            0x333,
        );
        let err = app.restore(1).unwrap_err();
        assert_eq!(
            err,
            ElideError::RestoreFailed { status: restore_status::DATA_AUTH_FAILED },
            "{wire:?}"
        );
        assert!(app.runtime.ecall(0, &[], 0).is_err(), "{wire:?}");
    }
}

/// Replaying a response captured from a previous session fails: each
/// handshake derives a fresh session key, so the stale ciphertext cannot
/// authenticate under the new key.
#[test]
fn replayed_previous_session_response_rejected() {
    for wire in BOTH_WIRES {
        // Capture the META response of a successful first restore.
        let captured: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
        let cap = Arc::clone(&captured);
        let (mut app, _server) = setup_mitm(
            move |req, resp| {
                if req as u64 == request::META && cap.lock().unwrap().is_none() {
                    *cap.lock().unwrap() = Some(resp.clone());
                }
                resp
            },
            wire,
            0x444,
        );
        app.restore(1).unwrap();
        let stale = captured.lock().unwrap().clone().expect("captured META response");

        // Any later session derives a different channel key, under which
        // the stale ciphertext must not authenticate.
        let fresh_key = [0x5Au8; 16];
        assert!(
            sgxelide::core::protocol::decrypt_msg(&fresh_key, &stale).is_err(),
            "{wire:?}: stale blob must not decrypt under another session key"
        );
    }
}

/// In local mode the server refuses to stream the data (it only releases
/// the key via META), so a compromised host cannot use REQUEST_DATA to
/// exfiltrate plaintext — even on a connection whose session *is*
/// legitimately established.
#[test]
fn local_mode_server_refuses_data_requests() {
    for wire in BOTH_WIRES {
        let app = crackme::app();
        let image = app.build_elide_image().unwrap();
        let mut rng = SeededRandom::new(0x777);
        let vendor = RsaKeyPair::generate(512, &mut rng);
        let package =
            protect(&image, &vendor, &Mode::Whitelist, DataPlacement::LocalEncrypted, &mut rng)
                .unwrap();
        let mut ias = AttestationService::new();
        let platform = Platform::provision(&mut rng, &mut ias);
        let server = Arc::new(package.make_server(ias));
        // Keep a handle on the connection so the attacker can reuse the
        // enclave's *own* established session after the restore.
        let transport = Arc::new(Mutex::new(connect(&server, wire)));
        let mut launched = package
            .launch(
                &platform,
                Arc::clone(&transport) as Arc<Mutex<dyn Transport + Send>>,
                new_sealed_store(),
                0x778,
            )
            .unwrap();
        let restore_index = app.protected_indices()["elide_restore"];
        launched
            .restore(restore_index)
            .unwrap_or_else(|e| panic!("{wire:?}: local-mode restore failed: {e}"));
        assert!(server.handshakes() >= 1, "{wire:?}: handshake must have happened");
        // The attacker pivots on the live session: DATA must be refused.
        let err = transport.lock().unwrap().request(request::DATA as u8, &[]).unwrap_err();
        assert_eq!(err, ElideError::Server(ServerError::BadRequest), "{wire:?}");
    }
}

/// A malicious host swapping the sealed blob for garbage forces the full
/// server path (fail-open to the *secure* path, never to broken state).
#[test]
fn garbage_sealed_blob_falls_back_to_server() {
    let image = build_simple();
    let mut rng = SeededRandom::new(0x888);
    let vendor = RsaKeyPair::generate(512, &mut rng);
    let package =
        protect(&image, &vendor, &Mode::Whitelist, DataPlacement::Remote, &mut rng).unwrap();
    let mut ias = AttestationService::new();
    let platform = Platform::provision(&mut rng, &mut ias);
    let server = Arc::new(package.make_server(ias));
    let transport = Arc::new(Mutex::new(InProcessTransport::new(Arc::clone(&server))));

    let loaded =
        sgxelide::enclave::loader::load_enclave(&platform.cpu, &package.image, &package.sigstruct)
            .unwrap();
    let mut rt = sgxelide::enclave::runtime::EnclaveRuntime::with_rng(
        loaded,
        Box::new(SeededRandom::new(1)),
    );
    let sealed = Arc::new(Mutex::new(Some(vec![0xABu8; 333])));
    install_elide_ocalls(
        &mut rt,
        transport,
        Arc::clone(&platform.qe),
        ElideFiles { data_file: None, sealed: Arc::clone(&sealed) },
    );
    elide_restore(&mut rt, 1).unwrap();
    assert_eq!(rt.ecall(0, &[], 0).unwrap().status, 9);
    assert!(server.handshakes() >= 1, "server path must have been used");
}
