//! Hashed timer wheel for per-connection deadlines.
//!
//! A shard owns thousands of connections but only two timeout kinds per
//! connection (read progress, write drain), so the wheel is small and
//! coarse: deadlines hash into one of `buckets` slots `granularity`
//! apart, and [`TimerWheel::advance`] pops every entry whose slot the
//! cursor passed. Entries are *hints*, not truth — a fired entry hands the
//! `(conn, kind)` pair back to the shard, which consults the connection's
//! live [`Deadline`](crate::transport::Deadline) and either closes the
//! connection or re-arms the entry at the newer deadline. That makes
//! cancellation lazy (resetting a deadline never touches the wheel) and
//! lets deadlines beyond the wheel horizon clamp into the last slot: the
//! early fire simply re-arms.

use std::time::{Duration, Instant};

/// Which per-connection deadline a timer entry tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum TimerKind {
    /// No read progress before the connection's read deadline.
    Read,
    /// Buffered response bytes not drained before the write deadline.
    Write,
}

/// One armed timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) struct TimerEntry {
    /// Shard-local connection id.
    pub conn: u64,
    /// Which deadline this entry tracks.
    pub kind: TimerKind,
    /// When the entry should fire (clamped to the wheel horizon).
    pub deadline: Instant,
}

/// The wheel: `buckets` slots of `granularity` each.
pub(super) struct TimerWheel {
    buckets: Vec<Vec<TimerEntry>>,
    granularity: Duration,
    /// Wheel time, advanced in whole-granularity steps by [`advance`].
    ///
    /// [`advance`]: TimerWheel::advance
    now: Instant,
    cursor: usize,
}

impl TimerWheel {
    pub(super) fn new(granularity: Duration, buckets: usize, now: Instant) -> Self {
        assert!(buckets > 1, "wheel needs at least two buckets");
        assert!(!granularity.is_zero(), "wheel needs a nonzero granularity");
        TimerWheel { buckets: vec![Vec::new(); buckets], granularity, now, cursor: 0 }
    }

    /// Horizon: the furthest future instant the wheel can represent.
    fn horizon(&self) -> Duration {
        self.granularity * (self.buckets.len() as u32 - 1)
    }

    /// Arms an entry. Deadlines in the past land in the next slot (they
    /// fire on the next `advance`); deadlines past the horizon clamp to
    /// the furthest slot and re-arm on fire.
    pub(super) fn schedule(&mut self, conn: u64, kind: TimerKind, deadline: Instant) {
        let delta = deadline.saturating_duration_since(self.now).min(self.horizon());
        let slots = (delta.as_nanos() / self.granularity.as_nanos()).max(1) as usize;
        let idx = (self.cursor + slots) % self.buckets.len();
        self.buckets[idx].push(TimerEntry { conn, kind, deadline });
    }

    /// Advances wheel time to `now`, returning every entry in the slots
    /// the cursor passed. The caller re-checks each entry's live deadline.
    pub(super) fn advance(&mut self, now: Instant) -> Vec<TimerEntry> {
        let mut fired = Vec::new();
        while now.saturating_duration_since(self.now) >= self.granularity {
            self.now += self.granularity;
            self.cursor = (self.cursor + 1) % self.buckets.len();
            fired.append(&mut self.buckets[self.cursor]);
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: Duration = Duration::from_millis(10);

    #[test]
    fn fires_after_its_slot_is_passed() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(G, 8, t0);
        wheel.schedule(1, TimerKind::Read, t0 + Duration::from_millis(25));
        assert!(wheel.advance(t0 + Duration::from_millis(10)).is_empty());
        let fired = wheel.advance(t0 + Duration::from_millis(40));
        assert_eq!(fired.len(), 1);
        assert_eq!((fired[0].conn, fired[0].kind), (1, TimerKind::Read));
    }

    #[test]
    fn past_deadlines_fire_on_next_advance() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(G, 8, t0);
        wheel.schedule(2, TimerKind::Write, t0);
        assert_eq!(wheel.advance(t0 + G).len(), 1);
    }

    #[test]
    fn beyond_horizon_clamps_and_fires_early() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(G, 4, t0);
        // Horizon is 30ms; a 10s deadline must still fire (early), so the
        // shard can re-check and re-arm it.
        wheel.schedule(3, TimerKind::Read, t0 + Duration::from_secs(10));
        let fired = wheel.advance(t0 + Duration::from_millis(60));
        assert_eq!(fired.len(), 1);
        assert!(fired[0].deadline > t0 + Duration::from_secs(9));
    }

    #[test]
    fn multiple_entries_in_one_slot_all_fire() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(G, 8, t0);
        wheel.schedule(1, TimerKind::Read, t0 + Duration::from_millis(15));
        wheel.schedule(2, TimerKind::Write, t0 + Duration::from_millis(15));
        let fired = wheel.advance(t0 + Duration::from_millis(20));
        assert_eq!(fired.len(), 2);
    }
}
