//! # elide-elf
//!
//! A minimal from-scratch ELF64 toolkit, sized for enclave shared objects.
//!
//! The SgxElide sanitizer operates on ELF files the way the paper's python
//! sanitizer used `pyelftools`: it parses section headers, walks function
//! symbols, zeroes the bodies of non-whitelisted functions, and patches the
//! text segment's `p_flags` to make the pages writable at load time.
//!
//! * [`types`] — header structures and constants.
//! * [`parse`] — [`parse::ElfFile`], a parser that keeps the raw image.
//! * [`builder`] — [`builder::ElfBuilder`], the linker back end.
//! * [`patch`] — in-place zeroing and `p_flags` patching.
//!
//! # Examples
//!
//! ```
//! use elide_elf::builder::{ElfBuilder, SectionSpec};
//! use elide_elf::parse::ElfFile;
//! use elide_elf::types::*;
//! # fn main() -> Result<(), ElfError> {
//! let mut b = ElfBuilder::new(0x100000);
//! b.add_section(SectionSpec::progbits(".text", SHF_ALLOC | SHF_EXECINSTR, vec![0x90; 64]));
//! let elf = ElfFile::parse(b.build()?)?;
//! assert_eq!(elf.section_by_name(".text").unwrap().sh_size, 64);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
pub mod builder;
pub mod parse;
pub mod patch;
pub mod types;

pub use parse::ElfFile;
pub use types::ElfError;
