//! # elide-tools
//!
//! Command-line tools reproducing the workflow of the paper's artifact
//! (Appendix A): build the enclave, run the sanitizer as part of the build
//! (`-c` selects local data), start the server, run the app.
//!
//! | Tool | Paper analog |
//! |---|---|
//! | `ev64-ld` | `gcc`/`ld` producing `enclave.so` |
//! | `elide-whitelist` | `make` in `BaseEnclave` → `whitelist.json` |
//! | `elide-sanitize` | the python sanitizer (with its `-c` flag) |
//! | `elide-sign` | `sgx_sign` with the vendor key |
//! | `elide-server` | `server.py` |
//! | `elide-run` | `./app` |
//!
//! The simulated platform (CPU fuses + quoting-enclave key) persists in a
//! `platform.bin` file so separate tool invocations model the same machine.

#![forbid(unsafe_code)]
use std::path::Path;
use std::process::ExitCode;

/// Minimal argument cursor for the tools (no external dependencies).
#[derive(Debug)]
pub struct Args {
    args: Vec<String>,
    positional: Vec<String>,
}

impl Args {
    /// Captures `std::env::args` minus the program name.
    pub fn capture() -> Self {
        Args { args: std::env::args().skip(1).collect(), positional: Vec::new() }
    }

    /// Builds from an explicit vector (tests).
    pub fn from_vec(args: Vec<String>) -> Self {
        Args { args, positional: Vec::new() }
    }

    /// Extracts `--name value`, returning the value.
    pub fn opt(&mut self, name: &str) -> Option<String> {
        let pos = self.args.iter().position(|a| a == name)?;
        if pos + 1 >= self.args.len() {
            return None;
        }
        self.args.remove(pos);
        Some(self.args.remove(pos))
    }

    /// Extracts a boolean flag `--name` (or short form).
    pub fn flag(&mut self, name: &str) -> bool {
        match self.args.iter().position(|a| a == name) {
            Some(pos) => {
                self.args.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Finishes parsing: everything left must be positional (no stray
    /// `--options`).
    ///
    /// # Errors
    ///
    /// Returns the offending option string.
    pub fn finish(mut self) -> Result<Vec<String>, String> {
        if let Some(bad) = self.args.iter().find(|a| a.starts_with("--")) {
            return Err(format!("unknown option {bad}"));
        }
        self.positional.append(&mut self.args);
        Ok(self.positional)
    }
}

/// Reads a whole file with a friendly error.
///
/// # Errors
///
/// Returns a printable message.
pub fn read_file(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Writes a whole file with a friendly error.
///
/// # Errors
///
/// Returns a printable message.
pub fn write_file(path: &str, data: &[u8]) -> Result<(), String> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
        }
    }
    std::fs::write(path, data).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Parses a hex string into bytes.
///
/// # Errors
///
/// Returns a printable message for odd length or bad digits.
pub fn parse_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("hex string must have even length".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|e| format!("bad hex: {e}")))
        .collect()
}

/// Formats bytes as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Standard `main` wrapper: prints errors to stderr and sets the exit code.
pub fn run_tool(result: Result<(), String>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The persisted simulated platform: CPU fuses + quoting-enclave key.
pub struct PlatformFile {
    /// The processor.
    pub cpu: sgx_sim::SgxCpu,
    /// The quoting enclave.
    pub qe: sgx_sim::quote::QuotingEnclave,
}

impl PlatformFile {
    /// Loads `path`, or provisions a fresh platform and saves it there.
    ///
    /// # Errors
    ///
    /// Returns a printable message on IO or parse failure.
    pub fn load_or_create(path: &str) -> Result<PlatformFile, String> {
        if Path::new(path).exists() {
            let bytes = read_file(path)?;
            if bytes.len() < 52 || &bytes[..4] != b"PLAT" {
                return Err(format!("{path} is not a platform file"));
            }
            let cpu = sgx_sim::SgxCpu::from_bytes(&bytes[4..52])
                .ok_or_else(|| format!("{path}: bad cpu record"))?;
            let qe = sgx_sim::quote::QuotingEnclave::from_bytes(&cpu, &bytes[52..])
                .ok_or_else(|| format!("{path}: bad quoting enclave record"))?;
            Ok(PlatformFile { cpu, qe })
        } else {
            let mut rng = elide_crypto::rng::OsRandom;
            let cpu = sgx_sim::SgxCpu::new(&mut rng);
            let qe = sgx_sim::quote::QuotingEnclave::provision(&cpu, &mut rng);
            let pf = PlatformFile { cpu, qe };
            pf.save(path)?;
            Ok(pf)
        }
    }

    /// Saves the platform file.
    ///
    /// # Errors
    ///
    /// Returns a printable message on IO failure.
    pub fn save(&self, path: &str) -> Result<(), String> {
        let mut out = Vec::new();
        out.extend_from_slice(b"PLAT");
        out.extend_from_slice(&self.cpu.to_bytes());
        out.extend_from_slice(&self.qe.to_bytes());
        write_file(path, &out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parsing() {
        let mut a = Args::from_vec(vec![
            "--out".into(),
            "x.so".into(),
            "-c".into(),
            "a.s".into(),
            "b.s".into(),
        ]);
        assert_eq!(a.opt("--out").as_deref(), Some("x.so"));
        assert!(a.flag("-c"));
        assert!(!a.flag("-c"));
        assert_eq!(a.finish().unwrap(), vec!["a.s".to_string(), "b.s".to_string()]);

        let a = Args::from_vec(vec!["--bogus".into(), "v".into()]);
        assert!(a.finish().is_err());
    }

    #[test]
    fn hex_roundtrip() {
        assert_eq!(parse_hex("00ff10").unwrap(), vec![0, 255, 16]);
        assert_eq!(to_hex(&[0, 255, 16]), "00ff10");
        assert!(parse_hex("abc").is_err());
        assert!(parse_hex("zz").is_err());
    }

    #[test]
    fn platform_file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("elide-plat-{}", std::process::id()));
        let path = dir.join("platform.bin");
        let path = path.to_str().unwrap();
        let a = PlatformFile::load_or_create(path).unwrap();
        let b = PlatformFile::load_or_create(path).unwrap();
        // Same fuses: same seal keys for identical identities.
        let m = [1u8; 32];
        assert_eq!(
            a.cpu.to_bytes(),
            b.cpu.to_bytes(),
            "reloaded platform must be the same machine"
        );
        let _ = m;
        std::fs::remove_dir_all(dir).ok();
    }
}
