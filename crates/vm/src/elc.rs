//! Elc: a small imperative language compiling to EV64 assembly.
//!
//! The paper's enclaves are compiled C; Elc plays that role for EV64 so
//! benchmark logic can be written above assembly level while still
//! producing real, sanitizable `.text` bytes. The compiler is a classic
//! three-stage pipeline: lexer → recursive-descent parser → single-pass
//! code generator with a register value-stack and frame-slot locals.
//!
//! # Language
//!
//! ```text
//! // XTEA-style mixing round
//! fn mix(v0, v1, k) {
//!     let sum = 0x9E3779B9;
//!     v0 = v0 + (((v1 << 4) ^ (v1 >> 5)) + v1 ^ (sum + k));
//!     return v0;
//! }
//!
//! fn main(inp, len, outp, cap) {
//!     let i = 0;
//!     let acc = 0;
//!     while (i < len) {
//!         acc = acc + load8(inp + i);
//!         if (acc > 1000) { acc = acc % 1000; }
//!         i = i + 1;
//!     }
//!     store64(outp, acc);
//!     return acc;
//! }
//! ```
//!
//! * All values are `u64`; arithmetic wraps; comparisons are unsigned and
//!   yield 0/1.
//! * Functions take up to 4 parameters, passed in `r2..r5` — exactly the
//!   ecall ABI, so an Elc function is directly usable as an ecall.
//! * Builtins: `load8/load16/load32/load64(addr)`,
//!   `store8/store16/store32/store64(addr, value)`; the sealed bulk
//!   intrinsics `memcpy(dst, src, len)`, `memset(dst, byte, len)`,
//!   `memcmp(a, b, len)` and `sha256_compress(state, block)` compile to
//!   single `intrin` instructions (result = the intrinsic's `r0`).
//! * `&symbol` takes the address of a link-time symbol (an assembly-side
//!   buffer or table) via `la`.
//! * Operators by falling precedence: unary `- ~ !`; `* / %`; `+ -`;
//!   `<< >>`; `< <= > >=`; `== !=`; `&`; `^`; `|`; `&&`; `||`
//!   (logical forms short-circuit).

use std::collections::HashMap;
use std::fmt;

/// Compilation error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElcError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for ElcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ElcError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ElcError> {
    Err(ElcError { line, msg: msg.into() })
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(u64),
    Punct(&'static str),
    Eof,
}

#[derive(Debug, Clone)]
struct Lexed {
    tok: Tok,
    line: usize,
}

const PUNCTS: [&str; 28] = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "(", ")", "{", "}", ",", ";", "+", "-", "*",
    "/", "%", "<", ">", "=", "&", "|", "^", "~", "!", ":",
];

fn lex(src: &str) -> Result<Vec<Lexed>, ElcError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut radix = 10;
            if c == '0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                radix = 16;
                i += 2;
            }
            let num_start = i;
            while i < bytes.len() && ((bytes[i] as char).is_ascii_hexdigit() || bytes[i] == b'_') {
                i += 1;
            }
            let text: String = src[num_start..i].chars().filter(|&ch| ch != '_').collect();
            let text = if radix == 10 { &src[start..i] } else { text.as_str() };
            let v = u64::from_str_radix(text.trim_start_matches("0x"), radix)
                .map_err(|e| ElcError { line, msg: format!("bad number: {e}") })?;
            out.push(Lexed { tok: Tok::Num(v), line });
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(Lexed { tok: Tok::Ident(src[start..i].to_string()), line });
            continue;
        }
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(Lexed { tok: Tok::Punct(p), line });
                i += p.len();
                continue 'outer;
            }
        }
        return err(line, format!("unexpected character {c:?}"));
    }
    out.push(Lexed { tok: Tok::Eof, line });
    Ok(out)
}

// ---------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Expr {
    Num(u64),
    Var(String),
    AddrOf(String), // &symbol: address of a link-time symbol
    Unary(&'static str, Box<Expr>),
    Binary(&'static str, Box<Expr>, Box<Expr>),
    Call(String, Vec<Expr>),
    Intrin(i32, Vec<Expr>), // sealed intrinsic (args in r1..r3)
    Load(usize, Box<Expr>), // size in bytes
}

#[derive(Debug, Clone)]
enum Stmt {
    Let(String, Expr),
    Assign(String, Expr),
    Store(usize, Expr, Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    While(Expr, Vec<Stmt>),
    Return(Option<Expr>),
    Expr(Expr),
}

#[derive(Debug, Clone)]
struct Function {
    name: String,
    params: Vec<String>,
    body: Vec<Stmt>,
    line: usize,
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser {
    toks: Vec<Lexed>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ElcError> {
        let line = self.line();
        match self.next() {
            Tok::Punct(got) if got == p => Ok(()),
            other => err(line, format!("expected {p:?}, got {other:?}")),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ElcError> {
        let line = self.line();
        match self.next() {
            Tok::Ident(s) => Ok(s),
            other => err(line, format!("expected identifier, got {other:?}")),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(got) if *got == p) {
            self.next();
            true
        } else {
            false
        }
    }

    fn program(&mut self) -> Result<Vec<Function>, ElcError> {
        let mut fns = Vec::new();
        while !matches!(self.peek(), Tok::Eof) {
            let line = self.line();
            let kw = self.expect_ident()?;
            if kw != "fn" {
                return err(line, format!("expected `fn`, got {kw:?}"));
            }
            let name = self.expect_ident()?;
            self.expect_punct("(")?;
            let mut params = Vec::new();
            if !self.eat_punct(")") {
                loop {
                    params.push(self.expect_ident()?);
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            if params.len() > 4 {
                return err(line, "at most 4 parameters supported");
            }
            let body = self.block()?;
            fns.push(Function { name, params, body, line });
        }
        Ok(fns)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ElcError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ElcError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Ident(kw) if kw == "let" => {
                self.next();
                let name = self.expect_ident()?;
                self.expect_punct("=")?;
                let e = self.expr()?;
                self.expect_punct(";")?;
                Ok(Stmt::Let(name, e))
            }
            Tok::Ident(kw) if kw == "if" => {
                self.next();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let then = self.block()?;
                let els = if matches!(self.peek(), Tok::Ident(k) if k == "else") {
                    self.next();
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, els))
            }
            Tok::Ident(kw) if kw == "while" => {
                self.next();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                Ok(Stmt::While(cond, self.block()?))
            }
            Tok::Ident(kw) if kw == "return" => {
                self.next();
                if self.eat_punct(";") {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Tok::Ident(name) if store_size(&name).is_some() => {
                // storeN(addr, value);
                self.next();
                let size = store_size(&name).expect("checked");
                self.expect_punct("(")?;
                let addr = self.expr()?;
                self.expect_punct(",")?;
                let value = self.expr()?;
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                Ok(Stmt::Store(size, addr, value))
            }
            Tok::Ident(name) => {
                // assignment or expression-statement
                if matches!(&self.toks[self.pos + 1].tok, Tok::Punct(p) if *p == "=") {
                    self.next();
                    self.next();
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Assign(name, e))
                } else {
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Expr(e))
                }
            }
            _ => {
                let e = self.expr()?;
                self.expect_punct(";")?;
                let _ = line;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, ElcError> {
        self.binary(0)
    }

    fn binary(&mut self, min_level: usize) -> Result<Expr, ElcError> {
        // Levels from loosest to tightest.
        const LEVELS: [&[&str]; 9] = [
            &["||"],
            &["&&"],
            &["|"],
            &["^"],
            &["&"],
            &["==", "!="],
            &["<", "<=", ">", ">="],
            &["<<", ">>"],
            &["+", "-"],
        ];
        if min_level == LEVELS.len() {
            return self.term();
        }
        let mut lhs = self.binary(min_level + 1)?;
        loop {
            let op = match self.peek() {
                Tok::Punct(p) if LEVELS[min_level].contains(p) => *p,
                _ => break,
            };
            self.next();
            let rhs = self.binary(min_level + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, ElcError> {
        // Tightest binary level: * / %
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Punct(p) if ["*", "/", "%"].contains(p) => *p,
                _ => break,
            };
            self.next();
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ElcError> {
        match self.peek() {
            Tok::Punct(p) if ["-", "~", "!"].contains(p) => {
                let op = *p;
                self.next();
                Ok(Expr::Unary(op, Box::new(self.unary()?)))
            }
            Tok::Punct("&") => {
                self.next();
                Ok(Expr::AddrOf(self.expect_ident()?))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ElcError> {
        let line = self.line();
        match self.next() {
            Tok::Num(v) => Ok(Expr::Num(v)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    if let Some(size) = load_size(&name) {
                        if args.len() != 1 {
                            return err(line, format!("{name} takes one argument"));
                        }
                        return Ok(Expr::Load(size, Box::new(args.remove_first())));
                    }
                    if store_size(&name).is_some() {
                        return err(line, format!("{name} is a statement, not an expression"));
                    }
                    if let Some((index, arity)) = intrin_builtin(&name) {
                        if args.len() != arity {
                            return err(line, format!("{name} takes {arity} arguments"));
                        }
                        return Ok(Expr::Intrin(index, args));
                    }
                    if args.len() > 4 {
                        return err(line, "at most 4 arguments supported");
                    }
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => err(line, format!("unexpected token {other:?}")),
        }
    }
}

trait RemoveFirst<T> {
    fn remove_first(&mut self) -> T;
}

impl<T> RemoveFirst<T> for Vec<T> {
    fn remove_first(&mut self) -> T {
        self.remove(0)
    }
}

fn load_size(name: &str) -> Option<usize> {
    match name {
        "load8" => Some(1),
        "load16" => Some(2),
        "load32" => Some(4),
        "load64" => Some(8),
        _ => None,
    }
}

fn store_size(name: &str) -> Option<usize> {
    match name {
        "store8" => Some(1),
        "store16" => Some(2),
        "store32" => Some(4),
        "store64" => Some(8),
        _ => None,
    }
}

/// Builtins that compile to a single `intrin` instruction: name →
/// (intrinsic index, arity). Arguments go to `r1..`, the result is `r0`.
fn intrin_builtin(name: &str) -> Option<(i32, usize)> {
    use crate::isa::intrinsics;
    match name {
        "memcpy" => Some((intrinsics::MEMCPY, 3)),
        "memset" => Some((intrinsics::MEMSET, 3)),
        "memcmp" => Some((intrinsics::MEMCMP, 3)),
        "sha256_compress" => Some((intrinsics::SHA256_COMPRESS, 2)),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Code generator
// ---------------------------------------------------------------------

/// Registers used as the expression value stack (caller-saved).
const VALUE_REGS: [&str; 9] = ["r6", "r7", "r8", "r9", "r10", "r11", "r12", "r13", "r14"];

struct Codegen {
    out: String,
    label: usize,
    locals: HashMap<String, i32>, // frame offset from sp
    frame: i32,
    depth: usize, // value-stack depth
    fn_line: usize,
}

impl Codegen {
    fn emit(&mut self, line: &str) {
        self.out.push_str("    ");
        self.out.push_str(line);
        self.out.push('\n');
    }

    fn fresh_label(&mut self, what: &str) -> String {
        self.label += 1;
        format!(".L{}_{what}", self.label)
    }

    fn push_reg(&mut self) -> Result<&'static str, ElcError> {
        if self.depth >= VALUE_REGS.len() {
            return err(self.fn_line, "expression too deeply nested");
        }
        let r = VALUE_REGS[self.depth];
        self.depth += 1;
        Ok(r)
    }

    fn pop_reg(&mut self) -> &'static str {
        self.depth -= 1;
        VALUE_REGS[self.depth]
    }

    fn top_reg(&self) -> &'static str {
        VALUE_REGS[self.depth - 1]
    }

    fn local_offset(&mut self, name: &str, line: usize) -> Result<i32, ElcError> {
        self.locals
            .get(name)
            .copied()
            .ok_or_else(|| ElcError { line, msg: format!("unknown variable {name}") })
    }

    fn expr(&mut self, e: &Expr) -> Result<(), ElcError> {
        match e {
            Expr::Num(v) => {
                let r = self.push_reg()?;
                self.emit(&format!("li {r}, {v}"));
            }
            Expr::Var(name) => {
                let off = self.local_offset(name, self.fn_line)?;
                let r = self.push_reg()?;
                self.emit(&format!("ld64 {r}, [sp+{off}]"));
            }
            Expr::AddrOf(symbol) => {
                let r = self.push_reg()?;
                self.emit(&format!("la {r}, {symbol}"));
            }
            Expr::Unary(op, inner) => {
                self.expr(inner)?;
                let r = self.top_reg();
                match *op {
                    "-" => {
                        self.emit("movi r1, 0");
                        self.emit(&format!("sub {r}, r1, {r}"));
                    }
                    "~" => self.emit(&format!("xori {r}, {r}, -1")),
                    "!" => {
                        let set = self.fresh_label("not");
                        self.emit("movi r1, 0");
                        self.emit(&format!("beq {r}, r1, {set}_one"));
                        self.emit(&format!("movi {r}, 0"));
                        self.emit(&format!("jmp {set}_done"));
                        self.out.push_str(&format!("{set}_one:\n"));
                        self.emit(&format!("movi {r}, 1"));
                        self.out.push_str(&format!("{set}_done:\n"));
                    }
                    _ => unreachable!("unary ops are - ~ !"),
                }
            }
            Expr::Binary(op, lhs, rhs) => self.binary(op, lhs, rhs)?,
            Expr::Load(size, addr) => {
                self.expr(addr)?;
                let r = self.top_reg();
                let mnem = match size {
                    1 => "ld8u",
                    2 => "ld16u",
                    4 => "ld32u",
                    _ => "ld64",
                };
                self.emit(&format!("{mnem} {r}, [{r}]"));
            }
            Expr::Call(name, args) => {
                for a in args {
                    self.expr(a)?;
                }
                // Save value-stack registers below the arguments.
                let arg_base = self.depth - args.len();
                for reg in &VALUE_REGS[..arg_base] {
                    self.emit(&format!("push {reg}"));
                }
                // Move arguments into r2..r5 (they sit on top of the stack).
                for (i, _) in args.iter().enumerate() {
                    self.emit(&format!("mov r{}, {}", 2 + i, VALUE_REGS[arg_base + i]));
                }
                self.emit(&format!("call {name}"));
                for _ in args {
                    self.pop_reg();
                }
                for i in (0..arg_base).rev() {
                    self.emit(&format!("pop {}", VALUE_REGS[i]));
                }
                let r = self.push_reg()?;
                self.emit(&format!("mov {r}, r0"));
            }
            Expr::Intrin(index, args) => {
                for a in args {
                    self.expr(a)?;
                }
                // Intrinsics clobber only r0 and memory, so the value
                // stack needs no saving — just marshal args to r1..
                let arg_base = self.depth - args.len();
                for (i, _) in args.iter().enumerate() {
                    self.emit(&format!("mov r{}, {}", 1 + i, VALUE_REGS[arg_base + i]));
                }
                self.emit(&format!("intrin {index}"));
                for _ in args {
                    self.pop_reg();
                }
                let r = self.push_reg()?;
                self.emit(&format!("mov {r}, r0"));
            }
        }
        Ok(())
    }

    fn binary(&mut self, op: &str, lhs: &Expr, rhs: &Expr) -> Result<(), ElcError> {
        // Short-circuit forms first.
        if op == "&&" || op == "||" {
            let label = self.fresh_label("sc");
            self.expr(lhs)?;
            let r = self.top_reg();
            // Normalize to 0/1.
            self.emit("movi r1, 0");
            self.emit(&format!("beq {r}, r1, {label}_zero"));
            self.emit(&format!("movi {r}, 1"));
            self.emit(&format!("jmp {label}_test"));
            self.out.push_str(&format!("{label}_zero:\n"));
            self.emit(&format!("movi {r}, 0"));
            self.out.push_str(&format!("{label}_test:\n"));
            self.emit("movi r1, 0");
            if op == "&&" {
                self.emit(&format!("beq {r}, r1, {label}_done"));
            } else {
                self.emit(&format!("bne {r}, r1, {label}_done"));
            }
            self.pop_reg();
            self.expr(rhs)?;
            let r2 = self.top_reg();
            // Normalize rhs too.
            self.emit("movi r1, 0");
            self.emit(&format!("beq {r2}, r1, {label}_rzero"));
            self.emit(&format!("movi {r2}, 1"));
            self.emit(&format!("jmp {label}_done"));
            self.out.push_str(&format!("{label}_rzero:\n"));
            self.emit(&format!("movi {r2}, 0"));
            self.out.push_str(&format!("{label}_done:\n"));
            return Ok(());
        }

        self.expr(lhs)?;
        self.expr(rhs)?;
        let rb = self.pop_reg();
        let ra = self.top_reg();
        match op {
            "+" => self.emit(&format!("add {ra}, {ra}, {rb}")),
            "-" => self.emit(&format!("sub {ra}, {ra}, {rb}")),
            "*" => self.emit(&format!("mul {ra}, {ra}, {rb}")),
            "/" => self.emit(&format!("divu {ra}, {ra}, {rb}")),
            "%" => self.emit(&format!("remu {ra}, {ra}, {rb}")),
            "&" => self.emit(&format!("and {ra}, {ra}, {rb}")),
            "|" => self.emit(&format!("or {ra}, {ra}, {rb}")),
            "^" => self.emit(&format!("xor {ra}, {ra}, {rb}")),
            "<<" => self.emit(&format!("shl {ra}, {ra}, {rb}")),
            ">>" => self.emit(&format!("shru {ra}, {ra}, {rb}")),
            "==" | "!=" | "<" | "<=" | ">" | ">=" => {
                let label = self.fresh_label("cmp");
                let branch = match op {
                    "==" => format!("beq {ra}, {rb}, {label}_true"),
                    "!=" => format!("bne {ra}, {rb}, {label}_true"),
                    "<" => format!("bltu {ra}, {rb}, {label}_true"),
                    ">=" => format!("bgeu {ra}, {rb}, {label}_true"),
                    ">" => format!("bltu {rb}, {ra}, {label}_true"),
                    _ => format!("bgeu {rb}, {ra}, {label}_true"), // <=
                };
                self.emit(&branch);
                self.emit(&format!("movi {ra}, 0"));
                self.emit(&format!("jmp {label}_done"));
                self.out.push_str(&format!("{label}_true:\n"));
                self.emit(&format!("movi {ra}, 1"));
                self.out.push_str(&format!("{label}_done:\n"));
            }
            other => return err(self.fn_line, format!("unsupported operator {other}")),
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), ElcError> {
        match s {
            Stmt::Let(name, e) => {
                if self.locals.contains_key(name) {
                    return err(self.fn_line, format!("variable {name} already defined"));
                }
                self.expr(e)?;
                let off = self.frame;
                self.frame += 8;
                self.locals.insert(name.clone(), off);
                let r = self.pop_reg();
                self.emit(&format!("st64 {r}, [sp+{off}]"));
            }
            Stmt::Assign(name, e) => {
                let off = self.local_offset(name, self.fn_line)?;
                self.expr(e)?;
                let r = self.pop_reg();
                self.emit(&format!("st64 {r}, [sp+{off}]"));
            }
            Stmt::Store(size, addr, value) => {
                self.expr(addr)?;
                self.expr(value)?;
                let rv = self.pop_reg();
                let ra = self.pop_reg();
                let mnem = match size {
                    1 => "st8",
                    2 => "st16",
                    4 => "st32",
                    _ => "st64",
                };
                self.emit(&format!("{mnem} {rv}, [{ra}]"));
            }
            Stmt::If(cond, then, els) => {
                let label = self.fresh_label("if");
                self.expr(cond)?;
                let r = self.pop_reg();
                self.emit("movi r1, 0");
                self.emit(&format!("beq {r}, r1, {label}_else"));
                for s in then {
                    self.stmt(s)?;
                }
                self.emit(&format!("jmp {label}_end"));
                self.out.push_str(&format!("{label}_else:\n"));
                for s in els {
                    self.stmt(s)?;
                }
                self.out.push_str(&format!("{label}_end:\n"));
            }
            Stmt::While(cond, body) => {
                let label = self.fresh_label("while");
                self.out.push_str(&format!("{label}_top:\n"));
                self.expr(cond)?;
                let r = self.pop_reg();
                self.emit("movi r1, 0");
                self.emit(&format!("beq {r}, r1, {label}_end"));
                for s in body {
                    self.stmt(s)?;
                }
                self.emit(&format!("jmp {label}_top"));
                self.out.push_str(&format!("{label}_end:\n"));
            }
            Stmt::Return(e) => {
                match e {
                    Some(e) => {
                        self.expr(e)?;
                        let r = self.pop_reg();
                        self.emit(&format!("mov r0, {r}"));
                    }
                    None => self.emit("movi r0, 0"),
                }
                self.emit("jmp .Lepilogue");
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.pop_reg();
            }
        }
        Ok(())
    }
}

/// Maximum locals+params per function (frame slots).
const MAX_FRAME_SLOTS: i32 = 64;

fn count_lets(stmts: &[Stmt]) -> i32 {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Let(..) => 1,
            Stmt::If(_, a, b) => count_lets(a) + count_lets(b),
            Stmt::While(_, a) => count_lets(a),
            _ => 0,
        })
        .sum()
}

/// Compiles Elc source into EV64 assembly. Every function becomes a global
/// `.func`, directly usable as an ecall (parameters map to `r2..r5`).
///
/// # Errors
///
/// Returns an [`ElcError`] naming the offending line.
///
/// # Examples
///
/// ```
/// let asm = elide_vm::elc::compile(
///     "fn add_mul(a, b) { return (a + b) * 2; }",
/// ).unwrap();
/// let obj = elide_vm::asm::assemble(&asm).unwrap();
/// assert!(obj.symbol("add_mul").is_some());
/// ```
pub fn compile(source: &str) -> Result<String, ElcError> {
    let toks = lex(source)?;
    let mut parser = Parser { toks, pos: 0 };
    let fns = parser.program()?;
    if fns.is_empty() {
        return err(1, "no functions defined");
    }

    let mut out = String::from(".section text\n");
    for f in &fns {
        let slots = f.params.len() as i32 + count_lets(&f.body);
        if slots > MAX_FRAME_SLOTS {
            return err(f.line, format!("function {} needs too many locals", f.name));
        }
        let frame_size = slots.max(1) * 8;
        let mut cg = Codegen {
            out: String::new(),
            label: 0,
            locals: HashMap::new(),
            frame: 0,
            depth: 0,
            fn_line: f.line,
        };
        // Prologue: reserve frame, spill parameters (r2..r5) to slots.
        cg.emit(&format!("addi sp, sp, -{frame_size}"));
        for (i, p) in f.params.iter().enumerate() {
            let off = cg.frame;
            cg.frame += 8;
            if cg.locals.insert(p.clone(), off).is_some() {
                return err(f.line, format!("duplicate parameter {p}"));
            }
            cg.emit(&format!("st64 r{}, [sp+{off}]", 2 + i));
        }
        for s in &f.body {
            cg.stmt(s)?;
        }
        // Implicit `return 0` at the end.
        cg.emit("movi r0, 0");
        // Epilogue.
        cg.out.push_str(".Lepilogue:\n");
        cg.emit(&format!("addi sp, sp, {frame_size}"));
        cg.emit("ret");

        out.push_str(&format!(".global {}\n.func {}\n", f.name, f.name));
        out.push_str(&cg.out);
        out.push_str(".endfunc\n\n");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::interp::{Exit, Vm};
    use crate::link::{link, LinkOptions};
    use crate::mem::FlatMemory;

    /// Compiles, links (entry = `main`), and runs with up to 4 args.
    fn run_elc(src: &str, args: &[u64]) -> u64 {
        let asm = compile(src).unwrap_or_else(|e| panic!("compile: {e}\n{src}"));
        let full = asm.to_string();
        let obj = assemble(&full).unwrap_or_else(|e| panic!("assemble: {e}\n{full}"));
        let image = link(&[obj], &LinkOptions { base: 0, entry: "main".into() }).unwrap();
        let elf = elide_elf::ElfFile::parse(image).unwrap();
        let text = elf.section_by_name(".text").unwrap();
        let mut mem = FlatMemory::new(0, 1 << 20);
        mem.write_at(text.sh_addr, elf.section_data(text).unwrap());
        if let Some(data) = elf.section_by_name(".data") {
            mem.write_at(data.sh_addr, elf.section_data(data).unwrap());
        }
        let mut vm = Vm::new(elf.header().e_entry);
        vm.set_sp(1 << 20);
        for (i, &a) in args.iter().enumerate() {
            vm.regs[2 + i] = a;
        }
        match vm.run(&mut mem, 10_000_000).unwrap() {
            Exit::Halt(_) => unreachable!("elc functions return"),
            Exit::Ocall(_) => unreachable!("no ocalls in elc"),
        }
    }

    /// Variant that stops at `ret` by planting a `halt` return address.
    fn eval(src: &str, args: &[u64]) -> u64 {
        // Wrap: entry calls main then halts.
        let asm = compile(src).unwrap_or_else(|e| panic!("compile: {e}"));
        let wrapper = "\
.section text
.global __start
.func __start
    mov r15, sp
    call main
    halt
.endfunc
";
        let objs = vec![assemble(wrapper).unwrap(), assemble(&asm).unwrap()];
        let image = link(&objs, &LinkOptions { base: 0, entry: "__start".into() }).unwrap();
        let elf = elide_elf::ElfFile::parse(image).unwrap();
        let text = elf.section_by_name(".text").unwrap();
        let mut mem = FlatMemory::new(0, 1 << 20);
        mem.write_at(text.sh_addr, elf.section_data(text).unwrap());
        let mut vm = Vm::new(elf.header().e_entry);
        vm.set_sp((1 << 20) - 64);
        for (i, &a) in args.iter().enumerate() {
            vm.regs[2 + i] = a;
        }
        match vm.run(&mut mem, 50_000_000).unwrap() {
            Exit::Halt(v) => v,
            Exit::Ocall(_) => unreachable!(),
        }
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval("fn main(a, b) { return a + b * 2; }", &[10, 4]), 18);
        assert_eq!(eval("fn main(a, b) { return (a + b) * 2; }", &[10, 4]), 28);
        assert_eq!(eval("fn main(a) { return a / 3 + a % 3; }", &[10]), 4);
        assert_eq!(eval("fn main(a) { return a << 4 | a >> 60; }", &[1]), 16);
        assert_eq!(eval("fn main() { return 0xff ^ 0x0f; }", &[]), 0xf0);
        assert_eq!(eval("fn main(a) { return -a; }", &[5]), (-5i64) as u64);
        assert_eq!(eval("fn main(a) { return ~a; }", &[0]), u64::MAX);
    }

    #[test]
    fn comparisons_yield_bool() {
        assert_eq!(eval("fn main(a, b) { return a < b; }", &[1, 2]), 1);
        assert_eq!(eval("fn main(a, b) { return a < b; }", &[2, 2]), 0);
        assert_eq!(eval("fn main(a, b) { return a <= b; }", &[2, 2]), 1);
        assert_eq!(eval("fn main(a, b) { return a > b; }", &[3, 2]), 1);
        assert_eq!(eval("fn main(a, b) { return a == b; }", &[7, 7]), 1);
        assert_eq!(eval("fn main(a, b) { return a != b; }", &[7, 7]), 0);
        assert_eq!(eval("fn main() { return !0; }", &[]), 1);
        assert_eq!(eval("fn main() { return !5; }", &[]), 0);
    }

    #[test]
    fn short_circuit_logic() {
        // Division by zero on the rhs must not execute when short-circuited.
        assert_eq!(eval("fn main(a) { return a == 0 || 10 / a > 1; }", &[0]), 1);
        assert_eq!(eval("fn main(a) { return a != 0 && 10 / a > 1; }", &[0]), 0);
        assert_eq!(eval("fn main(a) { return a != 0 && 10 / a > 1; }", &[4]), 1);
        assert_eq!(eval("fn main(a, b) { return a && b; }", &[5, 9]), 1);
    }

    #[test]
    fn control_flow() {
        let collatz = "
fn main(n) {
    let steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps = steps + 1;
    }
    return steps;
}";
        assert_eq!(eval(collatz, &[6]), 8);
        assert_eq!(eval(collatz, &[27]), 111);
    }

    #[test]
    fn function_calls_and_recursion() {
        let fib = "
fn fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
fn main(n) { return fib(n); }";
        assert_eq!(eval(fib, &[10]), 55);
        assert_eq!(eval(fib, &[15]), 610);
    }

    #[test]
    fn memory_builtins() {
        let src = "
fn main(p) {
    store64(p, 0x1122334455667788);
    store8(p + 8, 0xAB);
    return load32(p + 4) + load8(p + 8);
}";
        // p = 0x80000 inside flat memory.
        assert_eq!(eval(src, &[0x80000]), 0x11223344 + 0xAB);
    }

    #[test]
    fn implicit_return_zero() {
        assert_eq!(eval("fn main() { let x = 5; }", &[]), 0);
    }

    #[test]
    fn bulk_intrinsic_builtins() {
        // memset + memcpy + memcmp against FlatMemory's intrinsic impls.
        let src = "
fn main(p) {
    let q = p + 256;
    memset(p, 0xAA, 64);
    memcpy(q, p, 64);
    if (memcmp(p, q, 64) != 0) { return 100; }
    store8(q + 63, 0xAB);
    if (memcmp(p, q, 64) != 1) { return 200; }
    return load8(p) + load8(q + 63);
}";
        assert_eq!(eval(src, &[0x80000]), 0xAA + 0xAB);
    }

    #[test]
    fn address_of_link_time_symbols() {
        // `&symbol` resolves through the linker like a hand-written `la`.
        let asm = compile("fn main() { return load64(&table); }").unwrap();
        assert!(asm.contains("la r6, table"));
        let extra = ".section text\n.global table\ntable:\n    .quad 0x1234\n";
        let wrapper = "\
.section text
.global __start
.func __start
    mov r15, sp
    call main
    halt
.endfunc
";
        let objs =
            vec![assemble(wrapper).unwrap(), assemble(&asm).unwrap(), assemble(extra).unwrap()];
        let image = link(&objs, &LinkOptions { base: 0, entry: "__start".into() }).unwrap();
        let elf = elide_elf::ElfFile::parse(image).unwrap();
        let text = elf.section_by_name(".text").unwrap();
        let mut mem = FlatMemory::new(0, 1 << 20);
        mem.write_at(text.sh_addr, elf.section_data(text).unwrap());
        let mut vm = Vm::new(elf.header().e_entry);
        vm.set_sp((1 << 20) - 64);
        match vm.run(&mut mem, 1_000_000).unwrap() {
            Exit::Halt(v) => assert_eq!(v, 0x1234),
            Exit::Ocall(_) => unreachable!(),
        }
    }

    #[test]
    fn intrinsic_builtin_arity_is_checked() {
        assert!(compile("fn main(p) { memcpy(p, p); }").is_err());
        assert!(compile("fn main(p) { sha256_compress(p); }").is_err());
        assert!(compile("fn main(p) { memset(p, 0, 1, 2); }").is_err());
    }

    #[test]
    fn errors_are_reported_with_lines() {
        assert!(compile("fn main( { }").is_err());
        assert!(compile("fn main() { return x; }").is_err());
        assert!(compile("fn main() { let a = 1; let a = 2; }").is_err());
        assert!(compile("fn main(a, b, c, d, e) { }").is_err());
        assert!(compile("fn main() { store8(1); }").is_err());
        assert!(compile("").is_err());
        let e = compile("fn main() {\n  return 1 $ 2;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn compiled_code_is_position_sane() {
        // The generated assembly must assemble and produce a function body.
        let asm = compile("fn f(a) { return a * a; }").unwrap();
        let obj = assemble(&asm).unwrap();
        let f = obj.symbol("f").unwrap();
        assert!(f.size >= 5 * 8);
        let _ = run_elc; // silence unused in case of cfg changes
    }
}
