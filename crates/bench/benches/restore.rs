//! Criterion bench for Table 2's "Restore Time" columns: one
//! `elide_restore` call against a freshly launched sanitized enclave —
//! attested handshake, metadata fetch, data fetch/decrypt, the
//! self-modifying copy, and sealing — remote vs. local data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elide_apps::harness::launch_protected;
use elide_core::sanitizer::DataPlacement;

fn bench_restore(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_restore");
    group.sample_size(10);
    for app in elide_apps::all_apps() {
        for (label, placement) in
            [("remote", DataPlacement::Remote), ("local", DataPlacement::LocalEncrypted)]
        {
            group.bench_function(BenchmarkId::new(label, app.name), |b| {
                b.iter_with_setup(
                    || launch_protected(&app, placement, 42).expect("launch"),
                    |mut p| {
                        p.restore().expect("restore");
                        p
                    },
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_restore);
criterion_main!(benches);
