//! Loopback/network TCP transport: [`Wire`] for `TcpStream` and a
//! [`Listener`] over `TcpListener` with graceful close.

use super::{BoxedWire, Deadline, Limits, Listener, Wire};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

impl Wire for TcpStream {
    fn apply_limits(&mut self, limits: &Limits) -> io::Result<()> {
        self.set_nodelay(true).ok();
        self.set_read_timeout(limits.read_timeout)?;
        self.set_write_timeout(limits.write_timeout)?;
        Ok(())
    }

    fn peer(&self) -> String {
        self.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "tcp:?".into())
    }

    fn set_nonblocking(&mut self, nonblocking: bool) -> io::Result<()> {
        TcpStream::set_nonblocking(self, nonblocking)
    }
}

/// TCP [`Listener`] with a cooperative close: the closer sets a flag and
/// pokes the accept loop with a loopback connection so it observes it.
pub struct TcpAcceptor {
    listener: TcpListener,
    closed: Arc<AtomicBool>,
}

impl std::fmt::Debug for TcpAcceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpAcceptor").field("addr", &self.local_desc()).finish()
    }
}

impl TcpAcceptor {
    /// Wraps a bound listener.
    pub fn new(listener: TcpListener) -> Self {
        TcpAcceptor { listener, closed: Arc::new(AtomicBool::new(false)) }
    }

    /// Binds `addr` (e.g. `"127.0.0.1:0"`).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str) -> io::Result<Self> {
        Ok(Self::new(TcpListener::bind(addr)?))
    }

    /// The bound socket address (to print or connect back to).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }
}

impl Listener for TcpAcceptor {
    fn accept(&mut self) -> Option<BoxedWire> {
        // Errors from accept() must not kill the service: a client that
        // resets mid-handshake (ECONNABORTED) or a transient fd shortage
        // (EMFILE) during a flood would otherwise terminate the accept
        // loop and shut the whole server down.
        let mut give_up = Deadline::unbounded();
        loop {
            if self.closed.load(Ordering::SeqCst) {
                return None;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // The closer's wake-up connection is not a real client.
                    if self.closed.load(Ordering::SeqCst) {
                        return None;
                    }
                    return Some(Box::new(stream));
                }
                Err(e) => match e.kind() {
                    // Per-connection failures: the next accept is expected
                    // to work, retry immediately and indefinitely.
                    io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::Interrupted
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::TimedOut => give_up = Deadline::unbounded(),
                    // Anything else (resource exhaustion, listener gone):
                    // back off briefly — the shortage may pass — and give
                    // up only once it has persisted a full deadline.
                    _ => {
                        if give_up.instant().is_none() {
                            give_up = Deadline::after(Some(Duration::from_secs(5)));
                        } else if give_up.expired() {
                            return None;
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                },
            }
        }
    }

    fn local_desc(&self) -> String {
        self.listener.local_addr().map(|a| a.to_string()).unwrap_or_else(|_| "tcp:?".into())
    }

    fn closer(&self) -> Box<dyn Fn() + Send + Sync> {
        let closed = Arc::clone(&self.closed);
        let addr = self.listener.local_addr().ok();
        Box::new(move || {
            if closed.swap(true, Ordering::SeqCst) {
                return; // already closed
            }
            // Unblock the accept call.
            if let Some(addr) = addr {
                let _ = TcpStream::connect(addr);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Framed;
    use std::io::Write;

    #[test]
    fn accept_and_frame_over_tcp() {
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut framed = Framed::new(stream, Limits::default()).unwrap();
            framed.send(7, b"ping").unwrap();
            framed.recv().unwrap()
        });
        let wire = acceptor.accept().expect("connection");
        let mut framed = Framed::new(wire, Limits::default()).unwrap();
        let (tag, body) = framed.recv().unwrap().expect("frame");
        assert_eq!((tag, body.as_slice()), (7, b"ping".as_slice()));
        framed.send(0, b"pong").unwrap();
        assert_eq!(client.join().unwrap(), Some((0, b"pong".to_vec())));
    }

    #[test]
    fn closer_unblocks_accept() {
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let close = acceptor.closer();
        let t = std::thread::spawn(move || acceptor.accept().is_none());
        std::thread::sleep(std::time::Duration::from_millis(50));
        close();
        assert!(t.join().unwrap(), "accept must return None after close");
    }

    #[test]
    fn garbage_before_handshake_is_a_bad_frame() {
        // A client that writes garbage bytes produces either an oversized
        // declared length or an unknown tag — never a panic.
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&[0xFF; 64]).unwrap();
        });
        let wire = acceptor.accept().expect("connection");
        let mut framed = Framed::new(wire, Limits::default()).unwrap();
        // 0xFFFFFFFF declared length must be rejected by the limit.
        let e = framed.recv().unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
        t.join().unwrap();
    }
}
