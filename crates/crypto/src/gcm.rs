//! AES-GCM authenticated encryption (NIST SP 800-38D).
//!
//! This is the cipher the paper uses both for the client/server channel and
//! for locally stored secret data ("The client and server communicate using
//! AES GCM encryption, and if the secret data is encrypted on disk it also
//! uses AES GCM", §5). It mirrors the SGX SDK's `sgx_rijndael128GCM_*` API.

use crate::aes::{ctr_xor, Aes};
use crate::error::CryptoError;

/// GCM nonce (IV) length in bytes. We use the standard 96-bit IV.
pub const IV_LEN: usize = 12;
/// GCM authentication tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Reduction constants for an 8-bit right shift in GHASH's bit-reversed
/// field representation: `LAST8[r]` folds the byte shifted off the low end
/// back into the top 16 bits (`r`'s bit `i` contributes `x^(135-i) mod P`).
const LAST8: [u16; 256] = {
    let mut t = [0u16; 256];
    let mut b = 0;
    while b < 256 {
        let mut r: u16 = 0;
        let mut i = 0;
        while i < 8 {
            if (b >> i) & 1 == 1 {
                r ^= 0xE100 >> (7 - i);
            }
            i += 1;
        }
        t[b] = r;
        b += 1;
    }
    t
};

/// One GHASH key: Shoup's full 8-bit table, `t[k][b] = (b·H)·x^(8(15-k))`
/// for byte position `k`, derived once per key (64 KiB). Each 16-byte block
/// then costs 16 *independent* table lookups XORed together — no serial
/// shift-and-reduce chain at all, so the lookups of one block pipeline
/// freely.
#[derive(Clone)]
struct GhashKey {
    t: Box<[[u128; 256]; 16]>,
}

impl GhashKey {
    fn new(h: u128) -> Self {
        // Byte table for the most significant position first: m[b] = b·H,
        // built from 8 halvings of H (GHASH is bit-reversed, so ·x is a
        // right shift with reduction) plus linearity: m[i|j] = m[i]^m[j].
        let mut m = [0u128; 256];
        m[128] = h;
        let mut i = 64;
        loop {
            m[i] = {
                let v = m[2 * i];
                (v >> 1) ^ ((v & 1) * (0xe1 << 120))
            };
            if i == 1 {
                break;
            }
            i >>= 1;
        }
        for i in [2usize, 4, 8, 16, 32, 64, 128] {
            for j in 1..i {
                m[i + j] = m[i] ^ m[j];
            }
        }
        // Remaining byte positions by repeated ·x^8: shifting a block right
        // one byte multiplies its field element by x^8.
        let mut t = Box::new([[0u128; 256]; 16]);
        t[15] = m;
        for k in (0..15).rev() {
            for b in 0..256 {
                let v = t[k + 1][b];
                t[k][b] = (v >> 8) ^ ((LAST8[(v & 0xff) as usize] as u128) << 112);
            }
        }
        GhashKey { t }
    }

    /// Multiplies `x` by the key's `H`: one table lookup per byte of `x`,
    /// all independent, XORed together.
    #[inline]
    fn mul(&self, x: u128) -> u128 {
        let mut z = 0u128;
        for (k, tbl) in self.t.iter().enumerate() {
            z ^= tbl[((x >> (8 * k)) & 0xff) as usize];
        }
        z
    }

    fn ghash(&self, aad: &[u8], ct: &[u8]) -> u128 {
        let mut y = 0u128;
        let absorb = |data: &[u8], y: &mut u128| {
            let mut chunks = data.chunks_exact(16);
            for chunk in &mut chunks {
                let block: [u8; 16] = chunk.try_into().expect("16 bytes");
                *y = self.mul(*y ^ u128::from_be_bytes(block));
            }
            let rest = chunks.remainder();
            if !rest.is_empty() {
                let mut block = [0u8; 16];
                block[..rest.len()].copy_from_slice(rest);
                *y = self.mul(*y ^ u128::from_be_bytes(block));
            }
        };
        absorb(aad, &mut y);
        absorb(ct, &mut y);
        let lens = ((aad.len() as u128 * 8) << 64) | (ct.len() as u128 * 8);
        self.mul(y ^ lens)
    }
}

/// AES-GCM context bound to one key.
///
/// # Examples
///
/// ```
/// use elide_crypto::gcm::AesGcm;
/// # fn main() -> Result<(), elide_crypto::CryptoError> {
/// let gcm = AesGcm::new(&[0x42; 16])?;
/// let iv = [7u8; 12];
/// let (ct, tag) = gcm.seal(&iv, b"metadata", b"secret code bytes");
/// let pt = gcm.open(&iv, b"metadata", &ct, &tag)?;
/// assert_eq!(pt, b"secret code bytes");
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct AesGcm {
    aes: Aes,
    ghash: GhashKey,
}

impl std::fmt::Debug for AesGcm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AesGcm").finish_non_exhaustive()
    }
}

impl AesGcm {
    /// Creates a context from a 16- or 32-byte AES key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] for other key sizes.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        let aes = Aes::new(key)?;
        let mut hb = [0u8; 16];
        aes.encrypt_block(&mut hb);
        Ok(AesGcm { aes, ghash: GhashKey::new(u128::from_be_bytes(hb)) })
    }

    fn j0(&self, iv: &[u8; IV_LEN]) -> [u8; 16] {
        let mut j0 = [0u8; 16];
        j0[..IV_LEN].copy_from_slice(iv);
        j0[15] = 1;
        j0
    }

    /// Encrypts `plaintext`, authenticating it together with `aad`.
    ///
    /// Returns the ciphertext and the 16-byte tag.
    pub fn seal(
        &self,
        iv: &[u8; IV_LEN],
        aad: &[u8],
        plaintext: &[u8],
    ) -> (Vec<u8>, [u8; TAG_LEN]) {
        let j0 = self.j0(iv);
        let mut ctr1 = j0;
        let c = u32::from_be_bytes([ctr1[12], ctr1[13], ctr1[14], ctr1[15]]).wrapping_add(1);
        ctr1[12..16].copy_from_slice(&c.to_be_bytes());

        let mut ct = plaintext.to_vec();
        ctr_xor(&self.aes, &ctr1, &mut ct);

        let s = self.ghash.ghash(aad, &ct);
        let mut tag_block = j0;
        self.aes.encrypt_block(&mut tag_block);
        let tag = (u128::from_be_bytes(tag_block) ^ s).to_be_bytes();
        (ct, tag)
    }

    /// Decrypts `ciphertext`, verifying the tag over it and `aad`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::AuthenticationFailed`] if the tag does not
    /// verify; no plaintext is released in that case.
    pub fn open(
        &self,
        iv: &[u8; IV_LEN],
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8; TAG_LEN],
    ) -> Result<Vec<u8>, CryptoError> {
        let j0 = self.j0(iv);
        let s = self.ghash.ghash(aad, ciphertext);
        let mut tag_block = j0;
        self.aes.encrypt_block(&mut tag_block);
        let expect = (u128::from_be_bytes(tag_block) ^ s).to_be_bytes();

        // Constant-time-ish comparison: accumulate differences.
        let mut diff = 0u8;
        for (a, b) in expect.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(CryptoError::AuthenticationFailed);
        }

        let mut ctr1 = j0;
        let c = u32::from_be_bytes([ctr1[12], ctr1[13], ctr1[14], ctr1[15]]).wrapping_add(1);
        ctr1[12..16].copy_from_slice(&c.to_be_bytes());
        let mut pt = ciphertext.to_vec();
        ctr_xor(&self.aes, &ctr1, &mut pt);
        Ok(pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{RandomSource, SeededRandom};

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    // NIST GCM test case 1: empty plaintext, zero key/IV.
    #[test]
    fn nist_case_1_empty() {
        let gcm = AesGcm::new(&[0u8; 16]).unwrap();
        let iv = [0u8; 12];
        let (ct, tag) = gcm.seal(&iv, &[], &[]);
        assert!(ct.is_empty());
        assert_eq!(tag.to_vec(), hex("58e2fccefa7e3061367f1d57a4e7455a"));
    }

    // NIST GCM test case 2: one zero block.
    #[test]
    fn nist_case_2_single_block() {
        let gcm = AesGcm::new(&[0u8; 16]).unwrap();
        let iv = [0u8; 12];
        let (ct, tag) = gcm.seal(&iv, &[], &[0u8; 16]);
        assert_eq!(ct, hex("0388dace60b6a392f328c2b971b2fe78"));
        assert_eq!(tag.to_vec(), hex("ab6e47d42cec13bdf53a67b21257bddf"));
    }

    // NIST GCM test case 4: AAD + 60-byte plaintext.
    #[test]
    fn nist_case_4_with_aad() {
        let key = hex("feffe9928665731c6d6a8f9467308308");
        let iv_v = hex("cafebabefacedbaddecaf888");
        let mut iv = [0u8; 12];
        iv.copy_from_slice(&iv_v);
        let pt = hex("d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
        let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let gcm = AesGcm::new(&key).unwrap();
        let (ct, tag) = gcm.seal(&iv, &aad, &pt);
        assert_eq!(
            ct,
            hex("42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091")
        );
        assert_eq!(tag.to_vec(), hex("5bc94fbc3221a5db94fae95ae7121a47"));
        let back = gcm.open(&iv, &aad, &ct, &tag).unwrap();
        assert_eq!(back, pt);
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let gcm = AesGcm::new(&[9u8; 16]).unwrap();
        let iv = [1u8; 12];
        let (mut ct, tag) = gcm.seal(&iv, b"aad", b"top secret function bytes");
        ct[3] ^= 1;
        assert!(matches!(gcm.open(&iv, b"aad", &ct, &tag), Err(CryptoError::AuthenticationFailed)));
    }

    #[test]
    fn tampered_tag_rejected() {
        let gcm = AesGcm::new(&[9u8; 16]).unwrap();
        let iv = [1u8; 12];
        let (ct, mut tag) = gcm.seal(&iv, &[], b"payload");
        tag[0] ^= 0x80;
        assert!(gcm.open(&iv, &[], &ct, &tag).is_err());
    }

    #[test]
    fn wrong_aad_rejected() {
        let gcm = AesGcm::new(&[9u8; 16]).unwrap();
        let iv = [1u8; 12];
        let (ct, tag) = gcm.seal(&iv, b"aad-a", b"payload");
        assert!(gcm.open(&iv, b"aad-b", &ct, &tag).is_err());
    }

    // Randomized property checks, driven by the in-tree deterministic RNG
    // so every run exercises the same (broad) input set.
    #[test]
    fn prop_seal_open_roundtrip() {
        let mut rng = SeededRandom::new(0x6C11);
        for case in 0..64 {
            let mut key = [0u8; 16];
            let mut iv = [0u8; 12];
            rng.fill(&mut key);
            rng.fill(&mut iv);
            let mut aad = vec![0u8; (rng.next_u64() % 64) as usize];
            let mut pt = vec![0u8; (rng.next_u64() % 256) as usize];
            rng.fill(&mut aad);
            rng.fill(&mut pt);
            let gcm = AesGcm::new(&key).unwrap();
            let (ct, tag) = gcm.seal(&iv, &aad, &pt);
            assert_eq!(ct.len(), pt.len(), "case {case}");
            assert_eq!(gcm.open(&iv, &aad, &ct, &tag).unwrap(), pt, "case {case}");
        }
    }

    #[test]
    fn prop_any_bit_flip_detected() {
        let mut rng = SeededRandom::new(0x6C12);
        for case in 0..64 {
            let mut key = [0u8; 16];
            rng.fill(&mut key);
            let mut pt = vec![0u8; 1 + (rng.next_u64() % 63) as usize];
            rng.fill(&mut pt);
            let gcm = AesGcm::new(&key).unwrap();
            let iv = [3u8; 12];
            let (mut ct, tag) = gcm.seal(&iv, &[], &pt);
            let bit = (rng.next_u64() as usize) % (ct.len() * 8);
            ct[bit / 8] ^= 1 << (bit % 8);
            assert!(gcm.open(&iv, &[], &ct, &tag).is_err(), "case {case} bit {bit}");
        }
    }

    /// Bitwise GF(2^128) multiply, straight from SP 800-38D §6.3 — the
    /// reference the Shoup table is checked against.
    fn gf_mul_reference(x: u128, y: u128) -> u128 {
        const R: u128 = 0xe1 << 120;
        let mut z = 0u128;
        let mut v = x;
        for i in 0..128 {
            if (y >> (127 - i)) & 1 == 1 {
                z ^= v;
            }
            let lsb = v & 1;
            v >>= 1;
            if lsb == 1 {
                v ^= R;
            }
        }
        z
    }

    #[test]
    fn table_mul_matches_bitwise_reference() {
        let mut rng = SeededRandom::new(0x6113);
        for _ in 0..64 {
            let h = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            let key = GhashKey::new(h);
            for _ in 0..16 {
                let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                assert_eq!(key.mul(x), gf_mul_reference(h, x), "h={h:032x} x={x:032x}");
            }
        }
        // Degenerate operands exercise the reduction-table edges.
        for &h in &[0u128, 1, u128::MAX, 0xe1 << 120] {
            let key = GhashKey::new(h);
            for &x in &[0u128, 1, u128::MAX, 1 << 127] {
                assert_eq!(key.mul(x), gf_mul_reference(h, x), "h={h:032x} x={x:032x}");
            }
        }
    }

    #[test]
    fn aes256_key_roundtrip() {
        let gcm = AesGcm::new(&[0x11; 32]).unwrap();
        let iv = [2u8; 12];
        let (ct, tag) = gcm.seal(&iv, &[], b"with a 256-bit key");
        assert_eq!(gcm.open(&iv, &[], &ct, &tag).unwrap(), b"with a 256-bit key");
    }
}
