//! End-to-end enclave launch latency: the full ECREATE→EADD/EEXTEND→EINIT
//! cycle for the plain build, and ECREATE→…→EINIT→provision (attest + DH +
//! GCM transfer)→restore for the SgxElide build. Image build, signing, and
//! server standup happen once, untimed — matching the paper's `time ./app`
//! methodology on pre-built binaries. Every elided run uses a fresh sealed
//! store, so each one pays the full first-launch provisioning handshake.
//!
//! This is the number the crypto-kernel work moves: EEXTEND measurement is
//! SHA-256-bound, EINIT is RSA-bound, provisioning is DH + AES-GCM-bound.
//!
//! Emits `BENCH_launch_latency.json` at the workspace root.
//! `ELIDE_BENCH_REPS` overrides the per-app run count (CI smoke uses 2).
//!
//! Plain-main harness (`cargo bench --bench launch_latency`).

use elide_bench::{prepare_elide, prepare_plain, time_runs, write_latency_json, LatencyRecord};
use elide_core::sanitizer::DataPlacement;

fn main() {
    let runs: usize = std::env::var("ELIDE_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(20);

    let apps = {
        use elide_apps::*;
        vec![aes_app::app(), sha1_app::app(), crackme::app()]
    };

    let mut records: Vec<LatencyRecord> = Vec::new();
    println!("launch_latency (runs={runs})");
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "app", "build", "mean_ms", "std_ms", "min_ms", "max_ms"
    );
    let mut push = |rec: LatencyRecord| {
        let s = rec.stats();
        println!(
            "{:<14} {:>8} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            rec.name,
            rec.build,
            s.mean_ms,
            s.std_ms,
            rec.min_ms(),
            rec.max_ms()
        );
        records.push(rec);
    };

    for app in &apps {
        // Plain: load + EEXTEND measurement + EINIT, zero workload reps.
        let plain = prepare_plain(app);
        plain.run_seconds(900, 0); // warmup
        let mut seed = 1000u64;
        let samples = time_runs(runs, || {
            std::hint::black_box(plain.run_seconds(seed, 0));
            seed += 1;
        });
        push(LatencyRecord { name: app.name.to_string(), build: "plain", runs, samples });

        // Elide: load + EINIT + full provisioning handshake + restore.
        let elide = prepare_elide(app, DataPlacement::Remote);
        elide.run_seconds(900, 0); // warmup
        let mut seed = 2000u64;
        let samples = time_runs(runs, || {
            std::hint::black_box(elide.run_seconds(seed, 0));
            seed += 1;
        });
        push(LatencyRecord { name: app.name.to_string(), build: "elide", runs, samples });
    }

    let path = write_latency_json("launch_latency", &records).expect("write json");
    println!("\nwrote {}", path.display());
}
