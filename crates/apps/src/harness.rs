//! Shared harness: builds each benchmark in two configurations — plain SGX
//! ("w/ SGX" in Figures 3 and 4) and SgxElide-protected ("w/ SgxElide") —
//! and wires up the platform, server and transport.

use elide_core::api::{protect, LaunchedApp, Mode, Platform, ProtectedPackage};
use elide_core::elide_asm::ELIDE_ASM;
use elide_core::error::ElideError;
use elide_core::protocol::InProcessTransport;
use elide_core::restore::{new_sealed_store, SealedStore};
use elide_core::sanitizer::DataPlacement;
use elide_core::server::AuthServer;
use elide_crypto::rng::SeededRandom;
use elide_crypto::rsa::RsaKeyPair;
use elide_enclave::image::EnclaveImageBuilder;
use elide_enclave::loader::{load_enclave, sign_enclave};
use elide_enclave::runtime::EnclaveRuntime;
use sgx_sim::quote::AttestationService;
use sgx_sim::SgxCpu;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One benchmark application: guest assembly plus its ecall surface.
#[derive(Debug, Clone)]
pub struct App {
    /// Benchmark name as it appears in the paper's tables.
    pub name: &'static str,
    /// Guest assembly (the trusted component).
    pub asm: String,
    /// Trusted functions exposed as ecalls, in index order.
    pub ecalls: Vec<&'static str>,
}

impl App {
    /// Ecall index map for the **plain** build (no elide_restore).
    pub fn plain_indices(&self) -> HashMap<String, u64> {
        self.ecalls.iter().enumerate().map(|(i, n)| (n.to_string(), i as u64)).collect()
    }

    /// Ecall index map for the **protected** build (elide_restore last).
    pub fn protected_indices(&self) -> HashMap<String, u64> {
        let mut m = self.plain_indices();
        m.insert("elide_restore".to_string(), self.ecalls.len() as u64);
        m
    }

    /// Builds the plain enclave image (baseline "w/ SGX").
    ///
    /// # Errors
    ///
    /// Propagates assembler/linker errors.
    pub fn build_plain_image(&self) -> Result<Vec<u8>, ElideError> {
        let mut b = EnclaveImageBuilder::new();
        b.source(&self.asm);
        for e in &self.ecalls {
            b.ecall(e);
        }
        Ok(b.build()?)
    }

    /// Builds the image linked with the SgxElide runtime (pre-sanitizer).
    ///
    /// # Errors
    ///
    /// Propagates assembler/linker errors.
    pub fn build_elide_image(&self) -> Result<Vec<u8>, ElideError> {
        let mut b = EnclaveImageBuilder::new();
        b.source(ELIDE_ASM);
        b.source(&self.asm);
        for e in &self.ecalls {
            b.ecall(e);
        }
        b.ecall("elide_restore");
        Ok(b.build()?)
    }
}

/// A plain (unprotected) launched benchmark.
pub struct PlainApp {
    /// The runtime.
    pub runtime: EnclaveRuntime,
    /// Ecall index map.
    pub indices: HashMap<String, u64>,
}

/// Launches the plain build on a fresh platform.
///
/// # Errors
///
/// Propagates build/load errors.
pub fn launch_plain(app: &App, seed: u64) -> Result<PlainApp, ElideError> {
    let image = app.build_plain_image()?;
    let mut rng = SeededRandom::new(seed);
    let cpu = SgxCpu::new(&mut rng);
    let vendor = RsaKeyPair::generate(512, &mut rng);
    let sig = sign_enclave(&image, &vendor, 1, 1)?;
    let loaded = load_enclave(&cpu, &image, &sig)?;
    let runtime = EnclaveRuntime::with_rng(loaded, Box::new(SeededRandom::new(seed ^ 1)));
    Ok(PlainApp { runtime, indices: app.plain_indices() })
}

/// A protected launched benchmark with its whole environment.
pub struct ProtectedApp {
    /// The launched (sanitized) enclave.
    pub app: LaunchedApp,
    /// Ecall index map (includes `elide_restore`).
    pub indices: HashMap<String, u64>,
    /// The protected package (for re-launches and attacker analysis).
    pub package: ProtectedPackage,
    /// The platform, reusable for re-launches.
    pub platform: Platform,
    /// Shared server handle (for assertions).
    pub server: Arc<AuthServer>,
    /// The sealed store shared across launches.
    pub sealed: SealedStore,
}

impl ProtectedApp {
    /// Runs `elide_restore`. Returns retired instructions.
    ///
    /// # Errors
    ///
    /// See [`elide_core::restore::elide_restore`].
    pub fn restore(&mut self) -> Result<u64, ElideError> {
        let idx = self.indices["elide_restore"];
        Ok(self.app.restore(idx)?.instructions)
    }

    /// Relaunches the same package on the same platform (e.g. to exercise
    /// the sealed fast path). The old runtime is dropped.
    ///
    /// # Errors
    ///
    /// Propagates load errors.
    pub fn relaunch(&mut self, seed: u64) -> Result<(), ElideError> {
        let transport = Arc::new(Mutex::new(InProcessTransport::new(Arc::clone(&self.server))));
        self.app =
            self.package.launch(&self.platform, transport, Arc::clone(&self.sealed), seed)?;
        Ok(())
    }

    /// Relaunches from the sealed blob with **no server wired** — the
    /// warm-start path. The next [`Self::restore`] must take the sealed
    /// fast path; any server contact fails with a transport error.
    ///
    /// # Errors
    ///
    /// [`ElideError::NoSealedState`] before the first successful restore;
    /// load errors as in [`Self::relaunch`].
    pub fn warm_relaunch(&mut self, seed: u64) -> Result<(), ElideError> {
        let plan = self.package.image_plan()?;
        self.app =
            self.package.warm_start(&plan, &self.platform, Arc::clone(&self.sealed), seed)?;
        Ok(())
    }
}

/// Builds, protects and launches `app` with an in-process server.
///
/// # Errors
///
/// Propagates any stage of the Figure 1 pipeline.
pub fn launch_protected(
    app: &App,
    placement: DataPlacement,
    seed: u64,
) -> Result<ProtectedApp, ElideError> {
    let image = app.build_elide_image()?;
    let mut rng = SeededRandom::new(seed);
    let vendor = RsaKeyPair::generate(512, &mut rng);
    let package = protect(&image, &vendor, &Mode::Whitelist, placement, &mut rng)?;
    let mut ias = AttestationService::new();
    let platform = Platform::provision(&mut rng, &mut ias);
    let server = Arc::new(package.make_server(ias));
    let transport = Arc::new(Mutex::new(InProcessTransport::new(Arc::clone(&server))));
    let sealed = new_sealed_store();
    let launched = package.launch(&platform, transport, Arc::clone(&sealed), seed ^ 2)?;
    Ok(ProtectedApp {
        app: launched,
        indices: app.protected_indices(),
        package,
        platform,
        server,
        sealed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_app() -> App {
        App {
            name: "tiny",
            asm: ".section text\n.global f\n.func f\n    movi r0, 5\n    ret\n.endfunc\n"
                .to_string(),
            ecalls: vec!["f"],
        }
    }

    #[test]
    fn plain_launch_runs() {
        let app = tiny_app();
        let mut p = launch_plain(&app, 1).unwrap();
        assert_eq!(p.runtime.ecall(p.indices["f"], &[], 0).unwrap().status, 5);
    }

    #[test]
    fn protected_launch_requires_restore() {
        let app = tiny_app();
        let mut p = launch_protected(&app, DataPlacement::Remote, 2).unwrap();
        let f = p.indices["f"];
        assert!(p.app.runtime.ecall(f, &[], 0).is_err(), "sanitized code must fault");
        p.restore().unwrap();
        assert_eq!(p.app.runtime.ecall(f, &[], 0).unwrap().status, 5);
    }

    #[test]
    fn sealed_relaunch_skips_server() {
        let app = tiny_app();
        let mut p = launch_protected(&app, DataPlacement::Remote, 3).unwrap();
        p.restore().unwrap();
        let handshakes_before = p.server.handshakes();
        assert!(p.sealed.lock().unwrap().is_some(), "restore must seal");
        p.relaunch(9).unwrap();
        p.restore().unwrap();
        let f = p.indices["f"];
        assert_eq!(p.app.runtime.ecall(f, &[], 0).unwrap().status, 5);
        assert_eq!(
            p.server.handshakes(),
            handshakes_before,
            "second restore must not contact the server"
        );
    }
}
