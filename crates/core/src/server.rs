//! The authentication server (the paper's `server.py`, grown up): holds a
//! [`SecretStore`] of sanitized-enclave secrets and releases each only to
//! an enclave that passes remote attestation for it.
//!
//! `AuthServer` is shared-state only: every method takes `&self`, so one
//! `Arc<AuthServer>` serves any number of concurrent connections without
//! an outer mutex. All per-connection state lives in
//! [`crate::session::Session`].

use crate::delegation::{DelegationBundle, DelegationPolicy, PeerGrant, PeerSecret, SignedPolicy};
use crate::error::ServerError;
use crate::faults::FaultPlan;
use crate::meta::SecretMeta;
use crate::session::Session;
use crate::store::{SecretEntry, SecretStore};
use crate::ticket::{now_ms, TicketPlain};
use elide_crypto::rng::{OsRandom, RandomSource};
use elide_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use sgx_sim::quote::{AttestationService, Quote};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// What the server expects an attested enclave to look like.
#[derive(Debug, Clone, Default)]
pub struct ExpectedIdentity {
    /// Required MRENCLAVE (the *sanitized* enclave's measurement).
    pub mrenclave: Option<[u8; 32]>,
    /// Required MRSIGNER (the vendor key fingerprint).
    pub mrsigner: Option<[u8; 32]>,
}

/// The developer-controlled trusted remote party.
pub struct AuthServer {
    store: SecretStore,
    ias: AttestationService,
    /// Master RNG: only used to seed per-session RNGs, so contention on
    /// this mutex is one lock per connection, not per message.
    rng: Mutex<Box<dyn RandomSource + Send>>,
    handshakes: AtomicU64,
    resumptions: AtomicU64,
    /// Seals resumption tickets. Fresh random key per server instance:
    /// restarting the server invalidates every outstanding ticket by
    /// construction.
    ticket_key: [u8; 16],
    /// Validity window for newly issued tickets.
    ticket_ttl: Duration,
    /// Ids of redeemed tickets (single-use enforcement).
    used_tickets: Mutex<HashSet<[u8; 16]>>,
    /// Fault-injection plan for secret-store reads (chaos testing only;
    /// `None` in production). Behind an `RwLock` so a test harness can
    /// swap schedules between runs on a shared server.
    faults: RwLock<Option<FaultPlan>>,
    /// Delegation authorizations: signing key (lazily generated on the
    /// first grant) and per-delegate peer grant lists.
    delegation: Mutex<DelegationState>,
    /// Validity window for newly signed delegation policies.
    delegation_ttl: Duration,
}

#[derive(Default)]
struct DelegationState {
    key: Option<RsaKeyPair>,
    grants: HashMap<[u8; 32], Vec<PeerGrant>>,
}

impl std::fmt::Debug for AuthServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuthServer")
            .field("store", &self.store)
            .field("handshakes", &self.handshakes.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl AuthServer {
    /// Creates a single-secret server from the sanitizer outputs — the
    /// paper's shape, kept for the one-enclave workflow. `data` is the
    /// plaintext secret payload (empty is fine in local mode, where the
    /// enclave ships the ciphertext and only needs the key from the meta).
    pub fn new(
        meta: SecretMeta,
        data: Vec<u8>,
        expected: ExpectedIdentity,
        ias: AttestationService,
    ) -> Self {
        let mut store = SecretStore::new();
        store.insert(SecretEntry { name: "default".into(), meta, data, expected });
        Self::with_store(store, ias)
    }

    /// Creates a multi-secret server over a prepared store.
    pub fn with_store(store: SecretStore, ias: AttestationService) -> Self {
        let mut ticket_key = [0u8; 16];
        OsRandom.fill(&mut ticket_key);
        AuthServer {
            store,
            ias,
            rng: Mutex::new(Box::new(OsRandom)),
            handshakes: AtomicU64::new(0),
            resumptions: AtomicU64::new(0),
            ticket_key,
            ticket_ttl: Duration::from_secs(3600),
            used_tickets: Mutex::new(HashSet::new()),
            faults: RwLock::new(None),
            delegation: Mutex::new(DelegationState::default()),
            delegation_ttl: Duration::from_secs(3600),
        }
    }

    /// Replaces the validity window for newly signed delegation policies.
    /// `Duration::ZERO` signs policies that are already expired — useful
    /// for deterministic expiry tests.
    pub fn with_delegation_ttl(mut self, ttl: Duration) -> Self {
        self.delegation_ttl = ttl;
        self
    }

    /// Replaces the ticket-sealing key (tests: share a key across two
    /// servers, or fix it for determinism). Production servers keep the
    /// random per-instance key so restarts revoke outstanding tickets.
    pub fn with_ticket_key(mut self, key: [u8; 16]) -> Self {
        self.ticket_key = key;
        self
    }

    /// Replaces the validity window for newly issued tickets.
    /// `Duration::ZERO` issues tickets that are already expired — useful
    /// for deterministic expiry tests.
    pub fn with_ticket_ttl(mut self, ttl: Duration) -> Self {
        self.ticket_ttl = ttl;
        self
    }

    /// Replaces the master RNG (seeded in tests).
    pub fn with_rng(self, rng: Box<dyn RandomSource + Send>) -> Self {
        *self.rng.lock().expect("rng mutex") = rng;
        self
    }

    /// Installs a fault-injection plan for secret-store reads.
    pub fn with_faults(self, plan: FaultPlan) -> Self {
        self.set_faults(Some(plan));
        self
    }

    /// Replaces (or clears) the store fault-injection plan on a live
    /// server — lets a chaos harness reuse one server across schedules.
    pub fn set_faults(&self, plan: Option<FaultPlan>) {
        *self.faults.write().unwrap_or_else(|p| p.into_inner()) = plan;
    }

    /// True if the next secret-store read should fail (fault injection).
    pub(crate) fn inject_store_fault(&self) -> bool {
        self.faults
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .as_ref()
            .is_some_and(FaultPlan::store_io_error_now)
    }

    /// The secret store (read-only after startup).
    pub fn store(&self) -> &SecretStore {
        &self.store
    }

    /// Count of successful handshakes across all sessions (monitoring).
    pub fn handshakes(&self) -> u64 {
        self.handshakes.load(Ordering::SeqCst)
    }

    pub(crate) fn note_handshake(&self) {
        self.handshakes.fetch_add(1, Ordering::SeqCst);
    }

    /// Count of successful ticket resumptions across all sessions.
    pub fn resumptions(&self) -> u64 {
        self.resumptions.load(Ordering::SeqCst)
    }

    pub(crate) fn note_resumption(&self) {
        self.resumptions.fetch_add(1, Ordering::SeqCst);
    }

    /// Starts a fresh per-connection session, seeded with a full-width
    /// 256-bit seed from the master RNG so the session's DH ephemeral key
    /// keeps the master's entropy (a narrower seed would cap the channel
    /// key space at the seed width).
    pub fn new_session(&self) -> Session {
        let mut seed = [0u8; 32];
        self.rng.lock().expect("rng mutex").fill(&mut seed);
        Session::new(seed)
    }

    /// Verifies a quote's signature chain and resolves the secret entry
    /// its measurements are entitled to.
    ///
    /// # Errors
    ///
    /// [`ServerError::AttestationFailed`] for bad quotes,
    /// [`ServerError::WrongEnclave`] when no store entry matches.
    pub(crate) fn authenticate(&self, quote: &Quote) -> Result<Arc<SecretEntry>, ServerError> {
        self.ias.verify_quote(quote).map_err(|_| ServerError::AttestationFailed)?;
        self.store.lookup(&quote.mrenclave, &quote.mrsigner).ok_or(ServerError::WrongEnclave)
    }

    /// Authenticates a batch of quotes that became ready in one shard
    /// tick: all signature checks first, then one [`SecretStore`] batch
    /// lookup for the quotes that verified. Order is preserved.
    pub(crate) fn authenticate_batch(
        &self,
        quotes: &[Quote],
    ) -> Vec<Result<Arc<SecretEntry>, ServerError>> {
        let verified: Vec<bool> = quotes.iter().map(|q| self.ias.verify_quote(q).is_ok()).collect();
        let keys: Vec<([u8; 32], [u8; 32])> = quotes
            .iter()
            .zip(&verified)
            .filter(|(_, ok)| **ok)
            .map(|(q, _)| (q.mrenclave, q.mrsigner))
            .collect();
        let mut entries = self.store.lookup_batch(&keys).into_iter();
        quotes
            .iter()
            .zip(&verified)
            .map(|(_, ok)| {
                if !*ok {
                    return Err(ServerError::AttestationFailed);
                }
                entries.next().flatten().ok_or(ServerError::WrongEnclave)
            })
            .collect()
    }

    /// Issues a sealed resumption ticket for an established session,
    /// returning `(ticket_id, sealed_blob)`. The id is drawn from the
    /// session's RNG so ticket issue never contends on the master RNG.
    pub(crate) fn issue_ticket(
        &self,
        mrenclave: [u8; 32],
        mrsigner: [u8; 32],
        channel_key: [u8; 16],
        rng: &mut dyn RandomSource,
    ) -> ([u8; 16], Vec<u8>) {
        let mut ticket_id = [0u8; 16];
        rng.fill(&mut ticket_id);
        let plain = TicketPlain {
            mrenclave,
            mrsigner,
            channel_key,
            ticket_id,
            issued_ms: now_ms(),
            ttl_ms: self.ticket_ttl.as_millis() as u64,
        };
        (ticket_id, plain.seal(&self.ticket_key, rng))
    }

    /// Opens and validates a presented resumption ticket, burning its id.
    ///
    /// # Errors
    ///
    /// [`ServerError::TicketRejected`] when the blob fails to open (wrong
    /// or rotated ticket key), is expired, or was already redeemed. The id
    /// is burned *before* any further checks so a racing double-spend
    /// cannot win on both connections.
    pub(crate) fn redeem_ticket(&self, blob: &[u8]) -> Result<TicketPlain, ServerError> {
        let plain = TicketPlain::open(&self.ticket_key, blob)?;
        let fresh =
            self.used_tickets.lock().unwrap_or_else(|p| p.into_inner()).insert(plain.ticket_id);
        if !fresh {
            return Err(ServerError::TicketRejected);
        }
        if plain.expired_at(now_ms()) {
            return Err(ServerError::TicketRejected);
        }
        Ok(plain)
    }

    /// Authorizes the enclave measured `delegate_mrenclave` to act as a
    /// delegate secret server for `peers` (pairs of MRENCLAVE/MRSIGNER).
    /// The delegation signing key is generated lazily on the first grant;
    /// re-authorizing a delegate replaces its grant list.
    pub fn authorize_delegate(&self, delegate_mrenclave: [u8; 32], peers: &[([u8; 32], [u8; 32])]) {
        let mut state = self.delegation.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.key.is_none() {
            let mut rng = self.rng.lock().expect("rng mutex");
            state.key = Some(RsaKeyPair::generate(512, rng.as_mut()));
        }
        state.grants.insert(
            delegate_mrenclave,
            peers
                .iter()
                .map(|(mrenclave, mrsigner)| PeerGrant {
                    mrenclave: *mrenclave,
                    mrsigner: *mrsigner,
                })
                .collect(),
        );
    }

    /// Revokes a delegate's grant: subsequent `DELEGATE` requests from it
    /// are refused. Hosts learn of origin-side revocation out of band (or
    /// at the next policy expiry); [`crate::delegation::DelegateServer::revoke`]
    /// is the host-side kill switch.
    pub fn revoke_delegate(&self, delegate_mrenclave: &[u8; 32]) {
        self.delegation
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .grants
            .remove(delegate_mrenclave);
    }

    /// The public half of the delegation signing key, to be distributed
    /// to hosts so they can validate policies offline. `None` until the
    /// first [`Self::authorize_delegate`].
    pub fn delegation_public_key(&self) -> Option<RsaPublicKey> {
        self.delegation
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .key
            .as_ref()
            .map(|k| k.public_key().clone())
    }

    /// Builds and signs a [`DelegationBundle`] for the attested delegate:
    /// the signed policy plus every granted peer's secret pulled from the
    /// store. Called by the session layer on a `DELEGATE` request, so the
    /// bundle only ever travels over the delegate's attested channel.
    ///
    /// # Errors
    ///
    /// [`ServerError::DelegationRejected`] when `delegate_mrenclave` has
    /// no grant or a granted peer has no store entry (a stale grant must
    /// not silently shrink the bundle); [`ServerError::Internal`] if
    /// signing fails.
    pub(crate) fn delegation_bundle_for(
        &self,
        delegate_mrenclave: &[u8; 32],
        rng: &mut dyn RandomSource,
    ) -> Result<DelegationBundle, ServerError> {
        let state = self.delegation.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let peers =
            state.grants.get(delegate_mrenclave).ok_or(ServerError::DelegationRejected)?.clone();
        let key = state.key.as_ref().ok_or(ServerError::DelegationRejected)?;
        let mut secrets = Vec::with_capacity(peers.len());
        for g in &peers {
            let entry = self
                .store
                .lookup(&g.mrenclave, &g.mrsigner)
                .ok_or(ServerError::DelegationRejected)?;
            secrets.push(PeerSecret {
                mrenclave: g.mrenclave,
                mrsigner: g.mrsigner,
                meta: entry.meta.clone(),
                data: entry.data.clone(),
            });
        }
        let mut policy_id = [0u8; 16];
        rng.fill(&mut policy_id);
        let policy = DelegationPolicy {
            delegate_mrenclave: *delegate_mrenclave,
            policy_id,
            issued_ms: now_ms(),
            ttl_ms: self.delegation_ttl.as_millis() as u64,
            peers,
        };
        let signature = key.sign(&policy.to_bytes()).map_err(|_| ServerError::Internal)?;
        Ok(DelegationBundle { signed: SignedPolicy { policy, signature }, secrets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::SecretMeta;
    use elide_crypto::rng::SeededRandom;

    fn sample_meta() -> SecretMeta {
        SecretMeta {
            flags: 0,
            data_len: 4,
            text_len: 4,
            restore_offset: 0,
            key: [1; 16],
            iv: [2; 12],
            tag: [3; 16],
        }
    }

    #[test]
    fn single_secret_constructor_registers_one_entry() {
        let s = AuthServer::new(
            sample_meta(),
            b"data".to_vec(),
            ExpectedIdentity::default(),
            AttestationService::new(),
        );
        assert_eq!(s.store().len(), 1);
        assert_eq!(s.handshakes(), 0);
    }

    #[test]
    fn sessions_have_distinct_seeds() {
        let s = AuthServer::new(
            sample_meta(),
            Vec::new(),
            ExpectedIdentity::default(),
            AttestationService::new(),
        )
        .with_rng(Box::new(SeededRandom::new(7)));
        // Two sessions drawn from the same master RNG must not collide
        // (their DH ephemerals would otherwise be identical).
        let a = format!("{:?}", s.new_session());
        let b = format!("{:?}", s.new_session());
        // Debug output hides the seed; assert distinctness indirectly via
        // the master RNG stream (two successive 32-byte seed fills).
        use elide_crypto::rng::RandomSource;
        let mut master = SeededRandom::new(7);
        let mut x = [0u8; 32];
        let mut y = [0u8; 32];
        master.fill(&mut x);
        master.fill(&mut y);
        assert_ne!(x, y);
        let _ = (a, b);
    }

    #[test]
    fn handshake_counter_is_shared_and_atomic() {
        let s = std::sync::Arc::new(AuthServer::new(
            sample_meta(),
            Vec::new(),
            ExpectedIdentity::default(),
            AttestationService::new(),
        ));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        s.note_handshake();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.handshakes(), 800);
    }
}
