//! # elide-crypto
//!
//! From-scratch cryptographic substrate for the SgxElide reproduction.
//!
//! The paper relies on the SGX SDK crypto library inside the enclave and
//! python's `cryptography` package on the server; this crate replaces both
//! with self-contained implementations:
//!
//! * [`aes`] / [`gcm`] — AES-128/256 and AES-GCM, the channel and sealing
//!   cipher (`sgx_rijndael128GCM_*` analog).
//! * [`sha1`] / [`sha2`] — hash functions; SHA-256 also backs enclave
//!   measurement in `sgx-sim`.
//! * [`hmac`] / [`kdf`] — MACs and key derivation (`EGETKEY` analog).
//! * [`des`] — reference implementation for the DES benchmark.
//! * [`bignum`] / [`prime`] / [`rsa`] — SIGSTRUCT signing and verification.
//! * [`dh`] — the attested channel's key agreement.
//! * [`rng`] — pluggable OS/seeded randomness.
//!
//! # Examples
//!
//! ```
//! use elide_crypto::gcm::AesGcm;
//! # fn main() -> Result<(), elide_crypto::CryptoError> {
//! let gcm = AesGcm::new(&[0u8; 16])?;
//! let (ct, tag) = gcm.seal(&[0u8; 12], b"", b"secret enclave text section");
//! assert_eq!(gcm.open(&[0u8; 12], b"", &ct, &tag)?, b"secret enclave text section");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
pub mod aes;
pub mod bignum;
pub mod des;
pub mod dh;
pub mod error;
pub mod gcm;
pub mod hmac;
pub mod kdf;
pub mod prime;
pub mod rng;
pub mod rsa;
pub mod sha1;
pub mod sha2;

pub use error::CryptoError;
