//! The Sanitizer (§4.2): takes an unsigned enclave and redacts every
//! function that is not on the whitelist, producing the sanitized enclave
//! plus `enclave.secret.meta` and `enclave.secret.data`.
//!
//! Per §5 it also ORs `PF_W` into the text segment's program header so the
//! (SGX-v1, permission-fixed-at-`EADD`) hardware will accept the runtime
//! self-modification, and records the offset of `elide_restore` from the
//! text start so restoration can be position-independent.

use crate::error::ElideError;
use crate::meta::{SecretMeta, FLAG_ENCRYPTED_LOCAL, FLAG_RANGED};
use crate::whitelist::Whitelist;
use elide_crypto::gcm::AesGcm;
use elide_crypto::rng::RandomSource;
use elide_elf::patch::{or_segment_flags, read_vaddr_range, zero_vaddr_range};
use elide_elf::types::PF_W;
use elide_elf::ElfFile;

/// Where the secret data lives after sanitization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPlacement {
    /// Ship the data with the enclave, AES-GCM encrypted; the server holds
    /// only the key (the `-c` flag of the paper's sanitizer).
    LocalEncrypted,
    /// Keep the plaintext data on the server; nothing ships locally.
    Remote,
}

/// Output of the sanitizer.
pub struct SanitizedEnclave {
    /// The sanitized, unsigned enclave image (to be signed and shipped).
    pub image: Vec<u8>,
    /// `enclave.secret.meta` — server-only.
    pub meta: SecretMeta,
    /// The plaintext secret payload — server-only (remote mode) or the
    /// source of the local ciphertext.
    pub secret_data: Vec<u8>,
    /// `enclave.secret.data` to ship next to the enclave: the ciphertext in
    /// local mode, empty in remote mode.
    pub local_data_file: Vec<u8>,
    /// Names and byte sizes of the sanitized functions (Table 1 columns).
    pub sanitized_functions: Vec<(String, u64)>,
}

impl std::fmt::Debug for SanitizedEnclave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SanitizedEnclave")
            .field("image_len", &self.image.len())
            .field("sanitized_functions", &self.sanitized_functions.len())
            .field("meta", &self.meta)
            .finish_non_exhaustive()
    }
}

/// Maximum text-section size the in-enclave restore buffers can hold.
pub const MAX_TEXT_LEN: u64 = 64 * 1024;

fn prepare(image: &[u8]) -> Result<(ElfFile, u64, u64, u64), ElideError> {
    let elf = ElfFile::parse(image.to_vec())?;
    let text = elf
        .section_by_name(".text")
        .ok_or_else(|| ElideError::BadImage("no .text section".into()))?;
    if text.sh_size > MAX_TEXT_LEN {
        return Err(ElideError::BadImage(format!(
            "text section of {} bytes exceeds the {MAX_TEXT_LEN}-byte restore buffer",
            text.sh_size
        )));
    }
    let restore = elf
        .symbol_by_name("elide_restore")
        .ok_or_else(|| ElideError::BadImage("enclave not linked with SgxElide".into()))?;
    let text_addr = text.sh_addr;
    let text_len = text.sh_size;
    let restore_offset = restore
        .value
        .checked_sub(text_addr)
        .ok_or_else(|| ElideError::BadImage("elide_restore outside .text".into()))?;
    Ok((elf, text_addr, text_len, restore_offset))
}

fn encrypt_payload(
    placement: DataPlacement,
    payload: &[u8],
    flags: u64,
    text_len: u64,
    restore_offset: u64,
    rng: &mut dyn RandomSource,
) -> (SecretMeta, Vec<u8>) {
    match placement {
        DataPlacement::LocalEncrypted => {
            let mut key = [0u8; 16];
            let mut iv = [0u8; 12];
            rng.fill(&mut key);
            rng.fill(&mut iv);
            let gcm = AesGcm::new(&key).expect("16-byte key");
            let (ciphertext, tag) = gcm.seal(&iv, &[], payload);
            let meta = SecretMeta {
                flags: flags | FLAG_ENCRYPTED_LOCAL,
                data_len: payload.len() as u64,
                text_len,
                restore_offset,
                key,
                iv,
                tag,
            };
            (meta, ciphertext)
        }
        DataPlacement::Remote => {
            let meta = SecretMeta {
                flags,
                data_len: payload.len() as u64,
                text_len,
                restore_offset,
                key: [0; 16],
                iv: [0; 12],
                tag: [0; 16],
            };
            (meta, Vec::new())
        }
    }
}

/// Sanitizes `image` using the whitelist: every function symbol *not* on
/// the whitelist is zeroed; the secret payload is the entire original text
/// section (the paper's simple, self-contained choice in §5).
///
/// # Errors
///
/// * [`ElideError::BadImage`] — the image lacks `.text` or was not linked
///   with the SgxElide runtime (`elide_restore` missing).
pub fn sanitize(
    image: &[u8],
    whitelist: &Whitelist,
    placement: DataPlacement,
    rng: &mut dyn RandomSource,
) -> Result<SanitizedEnclave, ElideError> {
    let (mut elf, text_addr, text_len, restore_offset) = prepare(image)?;

    // Save the original text before redaction.
    let secret_data = read_vaddr_range(&elf, text_addr, text_len)?;

    // Redact every non-whitelisted function.
    let targets: Vec<(String, u64, u64)> = elf
        .function_symbols()
        .filter(|s| !whitelist.contains(&s.name))
        .map(|s| (s.name.clone(), s.value, s.size))
        .collect();
    let mut sanitized_functions = Vec::with_capacity(targets.len());
    for (name, value, size) in targets {
        zero_vaddr_range(&mut elf, value, size)?;
        sanitized_functions.push((name, size));
    }

    // Make the text segment writable for the life of the enclave (§5).
    or_segment_flags(&mut elf, text_addr, PF_W)?;

    let (meta, local_data_file) =
        encrypt_payload(placement, &secret_data, 0, text_len, restore_offset, rng);

    Ok(SanitizedEnclave {
        image: elf.into_bytes(),
        meta,
        secret_data,
        local_data_file,
        sanitized_functions,
    })
}

/// Blacklist-mode sanitization (§3.2's initial approach, kept as an
/// ablation): only the named `secret_functions` are redacted, and the
/// payload is a ranged record set — `[count][(offset, len)*][bytes]` —
/// instead of the whole text section, trading transparency for a smaller
/// secret payload.
///
/// # Errors
///
/// * [`ElideError::BadImage`] — a named function does not exist, or the
///   image was not linked with SgxElide.
pub fn sanitize_blacklist(
    image: &[u8],
    secret_functions: &[&str],
    placement: DataPlacement,
    rng: &mut dyn RandomSource,
) -> Result<SanitizedEnclave, ElideError> {
    let (mut elf, text_addr, text_len, restore_offset) = prepare(image)?;

    let mut entries: Vec<(u64, u64)> = Vec::new();
    let mut bytes: Vec<u8> = Vec::new();
    let mut sanitized_functions = Vec::new();
    for name in secret_functions {
        let sym = elf
            .symbol_by_name(name)
            .ok_or_else(|| ElideError::BadImage(format!("secret function {name} not found")))?
            .clone();
        if !sym.is_function() {
            return Err(ElideError::BadImage(format!("{name} is not a function")));
        }
        let body = read_vaddr_range(&elf, sym.value, sym.size)?;
        let off = sym.value.checked_sub(text_addr).ok_or_else(|| {
            ElideError::BadImage(format!("secret function {name} lies below .text"))
        })?;
        entries.push((off, sym.size));
        bytes.extend_from_slice(&body);
        sanitized_functions.push((sym.name.clone(), sym.size));
        zero_vaddr_range(&mut elf, sym.value, sym.size)?;
    }

    // Ranged payload: [count u64][(off u64, len u64)*count][bytes...]
    let mut payload = Vec::with_capacity(8 + entries.len() * 16 + bytes.len());
    payload.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (off, len) in &entries {
        payload.extend_from_slice(&off.to_le_bytes());
        payload.extend_from_slice(&len.to_le_bytes());
    }
    payload.extend_from_slice(&bytes);

    or_segment_flags(&mut elf, text_addr, PF_W)?;

    let (meta, local_data_file) =
        encrypt_payload(placement, &payload, FLAG_RANGED, text_len, restore_offset, rng);

    Ok(SanitizedEnclave {
        image: elf.into_bytes(),
        meta,
        secret_data: payload,
        local_data_file,
        sanitized_functions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elide_asm::ELIDE_ASM;
    use elide_crypto::rng::SeededRandom;
    use elide_elf::types::{PF_R, PF_X};
    use elide_enclave::image::EnclaveImageBuilder;

    fn build_image() -> Vec<u8> {
        let mut b = EnclaveImageBuilder::new();
        b.source(ELIDE_ASM);
        b.source(
            ".section text\n.global secret_fn\n.func secret_fn\n    movi r0, 777\n    ret\n.endfunc\n\
             .global secret_helper\n.func secret_helper\n    movi r0, 888\n    ret\n.endfunc\n",
        );
        b.ecall("secret_fn").ecall("elide_restore");
        b.build().unwrap()
    }

    fn wl() -> Whitelist {
        Whitelist::from_dummy_enclave().unwrap()
    }

    #[test]
    fn whitelist_mode_redacts_user_functions_only() {
        let image = build_image();
        let mut rng = SeededRandom::new(1);
        let out = sanitize(&image, &wl(), DataPlacement::Remote, &mut rng).unwrap();
        let names: Vec<&str> = out.sanitized_functions.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"secret_fn"));
        assert!(names.contains(&"secret_helper"));
        assert!(!names.contains(&"elide_restore"));
        assert!(!names.contains(&"elide_memcpy"));

        // The secret function bytes are zero in the sanitized image...
        let elf = ElfFile::parse(out.image.clone()).unwrap();
        let sym = elf.symbol_by_name("secret_fn").unwrap();
        let body = read_vaddr_range(&elf, sym.value, sym.size).unwrap();
        assert!(body.iter().all(|&b| b == 0));
        // ...but elide_restore is intact.
        let restore = elf.symbol_by_name("elide_restore").unwrap();
        let body = read_vaddr_range(&elf, restore.value, restore.size).unwrap();
        assert!(body.iter().any(|&b| b != 0));
    }

    #[test]
    fn text_segment_becomes_writable() {
        let image = build_image();
        let before = ElfFile::parse(image.clone()).unwrap();
        let text_addr = before.section_by_name(".text").unwrap().sh_addr;
        let seg = before
            .segments()
            .iter()
            .find(|s| s.p_vaddr <= text_addr && text_addr < s.p_vaddr + s.p_memsz)
            .unwrap();
        assert_eq!(seg.p_flags, PF_R | PF_X);

        let mut rng = SeededRandom::new(1);
        let out = sanitize(&image, &wl(), DataPlacement::Remote, &mut rng).unwrap();
        let after = ElfFile::parse(out.image).unwrap();
        let seg = after
            .segments()
            .iter()
            .find(|s| s.p_vaddr <= text_addr && text_addr < s.p_vaddr + s.p_memsz)
            .unwrap();
        assert_eq!(seg.p_flags, PF_R | PF_W | PF_X);
    }

    #[test]
    fn remote_mode_keeps_data_off_disk() {
        let image = build_image();
        let mut rng = SeededRandom::new(1);
        let out = sanitize(&image, &wl(), DataPlacement::Remote, &mut rng).unwrap();
        assert!(out.local_data_file.is_empty());
        assert!(!out.meta.is_local());
        assert_eq!(out.meta.data_len, out.secret_data.len() as u64);
        assert_eq!(out.meta.data_len, out.meta.text_len);
    }

    #[test]
    fn local_mode_encrypts_data_file() {
        let image = build_image();
        let mut rng = SeededRandom::new(1);
        let out = sanitize(&image, &wl(), DataPlacement::LocalEncrypted, &mut rng).unwrap();
        assert!(out.meta.is_local());
        assert_eq!(out.local_data_file.len(), out.secret_data.len());
        assert_ne!(out.local_data_file, out.secret_data);
        // The ciphertext decrypts back to the original text under the meta key.
        let gcm = AesGcm::new(&out.meta.key).unwrap();
        let plain = gcm.open(&out.meta.iv, &[], &out.local_data_file, &out.meta.tag).unwrap();
        assert_eq!(plain, out.secret_data);
    }

    #[test]
    fn secret_data_is_the_original_text() {
        let image = build_image();
        let elf = ElfFile::parse(image.clone()).unwrap();
        let text = elf.section_by_name(".text").unwrap();
        let original = elf.section_data(text).unwrap().to_vec();
        let mut rng = SeededRandom::new(1);
        let out = sanitize(&image, &wl(), DataPlacement::Remote, &mut rng).unwrap();
        assert_eq!(out.secret_data, original);
        assert_eq!(
            out.meta.restore_offset,
            elf.symbol_by_name("elide_restore").unwrap().value - text.sh_addr
        );
    }

    #[test]
    fn image_without_elide_runtime_rejected() {
        let mut b = EnclaveImageBuilder::new();
        b.source(".section text\n.global f\n.func f\nret\n.endfunc\n");
        b.ecall("f");
        let image = b.build().unwrap();
        let mut rng = SeededRandom::new(1);
        let err = sanitize(&image, &wl(), DataPlacement::Remote, &mut rng).unwrap_err();
        assert!(matches!(err, ElideError::BadImage(_)));
    }

    #[test]
    fn image_without_text_section_rejected() {
        // An ELF with no `.text` at all used to panic inside `prepare`;
        // it must be a typed BadImage error.
        use elide_elf::builder::{ElfBuilder, SectionSpec};
        use elide_elf::types::{SHF_ALLOC, SHF_EXECINSTR};
        let mut b = ElfBuilder::new(0x100000);
        b.add_section(SectionSpec::progbits(".code", SHF_ALLOC | SHF_EXECINSTR, vec![1, 2, 3]));
        let image = b.build().unwrap();
        let mut rng = SeededRandom::new(1);
        let err = sanitize(&image, &wl(), DataPlacement::Remote, &mut rng).unwrap_err();
        assert!(matches!(&err, ElideError::BadImage(m) if m.contains("no .text")), "{err}");
        let err = sanitize_blacklist(&image, &[], DataPlacement::Remote, &mut rng).unwrap_err();
        assert!(matches!(&err, ElideError::BadImage(m) if m.contains("no .text")), "{err}");
    }

    #[test]
    fn garbage_bytes_rejected() {
        let mut rng = SeededRandom::new(1);
        assert!(sanitize(&[0u8; 64], &wl(), DataPlacement::Remote, &mut rng).is_err());
        assert!(sanitize(b"not an elf", &wl(), DataPlacement::Remote, &mut rng).is_err());
    }

    #[test]
    fn blacklist_mode_redacts_only_named_functions() {
        let image = build_image();
        let mut rng = SeededRandom::new(1);
        let out =
            sanitize_blacklist(&image, &["secret_fn"], DataPlacement::Remote, &mut rng).unwrap();
        assert_eq!(out.sanitized_functions.len(), 1);
        assert!(out.meta.is_ranged());
        let elf = ElfFile::parse(out.image).unwrap();
        // secret_helper was NOT redacted in blacklist mode.
        let helper = elf.symbol_by_name("secret_helper").unwrap();
        let body = read_vaddr_range(&elf, helper.value, helper.size).unwrap();
        assert!(body.iter().any(|&b| b != 0));
        // Payload is much smaller than the whole text.
        assert!(out.secret_data.len() < out.meta.text_len as usize / 2);
    }

    #[test]
    fn blacklist_unknown_function_rejected() {
        let image = build_image();
        let mut rng = SeededRandom::new(1);
        assert!(matches!(
            sanitize_blacklist(&image, &["ghost"], DataPlacement::Remote, &mut rng),
            Err(ElideError::BadImage(_))
        ));
    }

    #[test]
    fn sanitized_image_measures_differently() {
        let image = build_image();
        let mut rng = SeededRandom::new(1);
        let out = sanitize(&image, &wl(), DataPlacement::Remote, &mut rng).unwrap();
        let m1 = elide_enclave::loader::measure_enclave(&image).unwrap();
        let m2 = elide_enclave::loader::measure_enclave(&out.image).unwrap();
        assert_ne!(m1, m2, "sanitization must change MRENCLAVE (dummy enclave is signed)");
    }
}
