//! Superblock translation: the execution tier above the decode cache.
//!
//! The decode cache (PR 2) removed per-instruction bus traffic but still
//! retires one [`Instr`] per trip through the interpreter's `match`, with a
//! fuel check, a retired-counter bump and a pc update per instruction. This
//! module lowers each validated page into **superblocks** — maximal
//! straight-line runs ending at the first control transfer — and executes
//! them with a token-threaded dispatch over pre-lowered micro-ops:
//!
//! * operand register indices and sign-extended immediates are resolved at
//!   translation time, branch/jump targets are absolute addresses;
//! * common idioms are fused into macro-ops (`movi`+`movhi` constant
//!   synthesis, `la`+`add`+`ld` table lookups, `addi`+`ld` address
//!   generation, `ld`+`xor` mix steps, `ld`+`st` copies, `addi`+branch
//!   loop back-edges), so one dispatch retires several guest instructions;
//! * fuel is accounted **per block**: the whole block cost is charged at
//!   entry, and early exits (faults, self-patching stores) refund the
//!   unexecuted remainder, reconstructing the exact per-instruction fault
//!   address and retired count the interpreter would have produced;
//! * back-to-back blocks on the same page chain without re-probing the
//!   bus: a store that hits the executing page is detected *at the store*
//!   (the [`BlockExit::Patched`] exit) and every other way the page's bytes
//!   can change moves its generation, which is re-checked on page entry.
//!
//! Anything the translator cannot prove equivalent — misaligned PCs,
//! uncacheable buses, page-trace mode, fuel slivers smaller than one block
//! — falls back to the instruction-at-a-time interpreter loop, which bails
//! back to the translator as soon as execution returns to a translatable
//! page. Invalidation reuses the decode cache's per-page generations
//! unchanged, so the sanitize → fault → `elide_restore` → re-execute life
//! cycle needs no extra coherence machinery.

use crate::dcache::INSTRS_PER_PAGE;
use crate::interp::{Exit, InterpOutcome, Vm};
use crate::isa::{Instr, Opcode, INSTR_SIZE, NUM_REGS, REG_SP};
use crate::mem::{Bus, DTlb, VmFault, CODE_PAGE_SIZE};

const PAGE_MASK: u64 = CODE_PAGE_SIZE - 1;

/// Lowered micro-op kinds. `T*` kinds are terminators: every block ends
/// with exactly one, and nothing before a terminator transfers control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LKind {
    // Straight-line ops.
    MovR,
    LImm,  // also carries pre-resolved Ldpc results and fused movi+movhi
    MovHi, // imm pre-shifted into the high half
    Add,
    Sub,
    Mul,
    Divu,
    Remu,
    And,
    Or,
    Xor,
    Shl,
    Shru,
    Shrs,
    Rotl32,
    Rotr32,
    Add32,
    Sub32,
    Mul32,
    Addi,
    Andi,
    Ori,
    Xori,
    Shli,  // shift pre-masked
    Shrui, // shift pre-masked
    Shrsi, // shift pre-masked
    Rotl32i,
    Rotr32i,
    Add32i,
    Ld, // size in `sz`
    St, // size in `sz`
    /// A followed same-page `jmp`: retires the jump, control stays inside
    /// the trace (the next op is the jump target's lowering).
    Hop,
    /// A followed same-page `call`: pushes the return address and falls
    /// through to the callee's lowering. Exits via `Patched` if the push
    /// hits the executing page.
    HCall,
    /// A `ret` inside a followed call: pops the return address and, when
    /// it matches the translation-time expectation in `imm` (the guest may
    /// have overwritten the stack slot), falls through to the caller's
    /// continuation; otherwise side-exits to the popped address.
    RetHop,
    // Fused macro-ops.
    LdSt,      // ld a,[b+imm]; st a,[c+aux]
    LdXor,     // ld a,[b+imm]; xor c,c,a
    LdAdd32,   // ld a,[b+imm]; add32 c,c,a
    AddLd,     // add t,b,c; ld a,[t+imm]        (t in sz high nibble)
    AddiLd,    // addi t,b,aux; ld a,[t+imm]     (t in sz high nibble)
    TabLd,     // t = aux; c = aux + r[b]; ld a,[c+imm]   (la+add+ld lookup)
    AddSl,     // u = r[c] << imm; a = r[b] + u  (u in sz high nibble)
    OrSl,      // u = r[c] << imm; a = r[b] | u  (u in sz high nibble)
    SlLd,      // u = r[c] << k; d = r[b] + u; ld a,[d+imm]  (k,u,d in aux)
    ShrAndi,   // a = (r[b] >> imm) & aux      (same-reg shrui+andi)
    ShruAndi,  // a = (r[b] >> (r[c]&63)) & aux (same-reg shru+andi)
    Xor3,      // a = r[b] ^ r[c] ^ r[u]       (u in sz high nibble)
    Add3,      // a = r[b] + r[c] + r[u]       (u in sz high nibble, u≠a)
    Add32_3,   // 32-bit a = b + c + u         (u in sz high nibble, u≠a)
    RotlAdd32, // 32-bit a = rotl(b, imm) + c
    XorSt,     // a = r[b] ^ r[c]; st a,[u+aux] (u in sz high nibble)
    Mov2,      // a = r[b]; c = r[u]           (u in sz high nibble)
    // Side exits: the trace leaves through `imm` when the lowered
    // condition holds, otherwise execution continues with the next op.
    // Backward branches are stored inverted (exit = loop exit), so hot
    // back-edges stay inside the trace and loops unroll up to the cap.
    // `sz` marks a fused pre-op: 1 → addi c,c,aux; 2 → movi c,aux.
    TBeq, // imm = absolute exit target
    TBne,
    TBltu,
    TBgeu,
    TBlts,
    TBges,
    // Terminators.
    TJmp,   // imm = absolute target (cross-page or indirect-shaped)
    TCall,  // imm = absolute target
    TCallr, // target = r[b]
    TRet,
    TJmpr, // target = r[b]
    THalt,
    TOcall,  // imm = ocall index
    TIntrin, // imm = intrinsic index
    TIllegal,
    TFall, // trace cap or page end; imm = continuation address
}

/// One lowered micro-op. 32 bytes; operands pre-resolved at translation.
#[derive(Debug, Clone, Copy)]
struct LOp {
    kind: LKind,
    a: u8,
    b: u8,
    c: u8,
    /// Index of the op's **first** source instruction within the page.
    off: u16,
    /// Guest instructions this op retires (fusion width; 0 for `TFall`).
    retire: u8,
    /// Memory size in the low nibble; fused scratch register in the high.
    sz: u8,
    /// Primary immediate: sign-extended value or absolute target.
    imm: u64,
    /// Secondary immediate for fused ops (pre-addi delta, store offset,
    /// table base).
    aux: u64,
}

/// A translated superblock: straight-line ops plus one terminator.
#[derive(Debug, Clone)]
struct Block {
    /// Guest instructions retired by a full (uninterrupted) execution.
    cost: u64,
    /// Second page this block lowered instructions from (`u64::MAX` for a
    /// single-page block): the trace continued across the sequential page
    /// boundary, so stores hitting `watch` must exit `Patched` and entry
    /// must re-check the neighbour's generation against the slot's
    /// `dep_gen`.
    watch: u64,
    ops: Box<[LOp]>,
}

/// Per-dcache-slot translation state, keyed by `(page_addr, generation)`.
#[derive(Debug, Clone)]
struct TransSlot {
    page_addr: u64,
    gen: u64,
    /// Cross-page dependency: every block with `watch != u64::MAX` in this
    /// slot lowered instructions from `dep_page` at generation `dep_gen`
    /// (`u64::MAX` = no block crosses). Checked on crossing-block entry.
    dep_page: u64,
    dep_gen: u64,
    /// Instruction index → block id + 1 (0 = not yet translated).
    block_at: Box<[u32; INSTRS_PER_PAGE]>,
    blocks: Vec<Block>,
}

impl TransSlot {
    fn empty() -> Self {
        TransSlot {
            page_addr: u64::MAX,
            gen: 0,
            dep_page: u64::MAX,
            dep_gen: 0,
            block_at: Box::new([0; INSTRS_PER_PAGE]),
            blocks: Vec::new(),
        }
    }

    fn reset(&mut self, page_addr: u64, gen: u64) {
        self.page_addr = page_addr;
        self.gen = gen;
        self.dep_page = u64::MAX;
        self.dep_gen = 0;
        self.block_at.fill(0);
        self.blocks.clear();
    }
}

/// Superblock cache, slot-parallel to the [`crate::dcache::DecodeCache`];
/// owned by a [`Vm`].
#[derive(Debug, Clone, Default)]
pub struct TransCache {
    slots: Vec<TransSlot>,
}

impl TransCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        TransCache { slots: Vec::new() }
    }

    /// Drops every translation (used with
    /// [`crate::dcache::DecodeCache::invalidate_all`]).
    pub fn invalidate_all(&mut self) {
        self.slots.clear();
    }

    /// Number of translated blocks currently live (all slots).
    pub fn translated_blocks(&self) -> usize {
        self.slots.iter().map(|s| s.blocks.len()).sum()
    }

    /// Makes `slot` current for `(page_addr, gen)`, dropping any stale
    /// translation for a previous generation or an evicted page.
    fn ensure(&mut self, slot: usize, page_addr: u64, gen: u64) {
        if self.slots.len() <= slot {
            self.slots.resize_with(slot + 1, TransSlot::empty);
        }
        let s = &mut self.slots[slot];
        if s.page_addr != page_addr || s.gen != gen {
            s.reset(page_addr, gen);
        }
    }

    fn block_id(&self, slot: usize, idx: usize) -> Option<u32> {
        match self.slots[slot].block_at[idx] {
            0 => None,
            id => Some(id - 1),
        }
    }

    /// Drops every translation in `slot` (keeping its page identity):
    /// called when the cross-page dependency's generation moved, so the
    /// crossing blocks are stale while the page's own bytes are not.
    fn drop_dep(&mut self, slot: usize) {
        let s = &mut self.slots[slot];
        let (page, gen) = (s.page_addr, s.gen);
        s.reset(page, gen);
    }

    /// Translates the block at `idx`. `instrs` covers this page and — when
    /// `dep` is `Some((next_page, next_gen))` — the sequentially next page,
    /// letting the trace continue across the boundary; a block that does
    /// cross records the dependency on the slot and watches `next_page`.
    fn translate(
        &mut self,
        slot: usize,
        idx: usize,
        instrs: &[Instr],
        page: u64,
        dep: Option<(u64, u64)>,
    ) -> u32 {
        let (mut block, crossed) = translate_block(instrs, page, idx);
        let s = &mut self.slots[slot];
        if crossed {
            let (dep_page, dep_gen) = dep.expect("crossing requires a pair view");
            debug_assert!(s.dep_page == u64::MAX || s.dep_page == dep_page);
            s.dep_page = dep_page;
            s.dep_gen = dep_gen;
            block.watch = dep_page;
        }
        let id = s.blocks.len() as u32;
        s.blocks.push(block);
        s.block_at[idx] = id + 1;
        id
    }
}

/// Sign-extends an instruction immediate to 64 bits.
#[inline]
fn sx(imm: i32) -> u64 {
    imm as i64 as u64
}

/// Lowers one instruction at page index `idx` without fusion.
fn lower_one(ins: Instr, idx: usize, page: u64) -> LOp {
    use LKind::*;
    let off = idx as u16;
    let next = page + (idx as u64 + 1) * INSTR_SIZE;
    let mut op = LOp {
        kind: MovR,
        a: ins.a,
        b: ins.b,
        c: ins.c,
        off,
        retire: 1,
        sz: 0,
        imm: sx(ins.imm),
        aux: 0,
    };
    op.kind = match ins.op {
        Opcode::Illegal => TIllegal,
        Opcode::Halt => THalt,
        Opcode::Mov => MovR,
        Opcode::Movi => LImm,
        Opcode::Movhi => {
            op.imm = (ins.imm as u32 as u64) << 32;
            MovHi
        }
        Opcode::Add => Add,
        Opcode::Sub => Sub,
        Opcode::Mul => Mul,
        Opcode::Divu => Divu,
        Opcode::Remu => Remu,
        Opcode::And => And,
        Opcode::Or => Or,
        Opcode::Xor => Xor,
        Opcode::Shl => Shl,
        Opcode::Shru => Shru,
        Opcode::Shrs => Shrs,
        Opcode::Rotl32 => Rotl32,
        Opcode::Rotr32 => Rotr32,
        Opcode::Add32 => Add32,
        Opcode::Sub32 => Sub32,
        Opcode::Mul32 => Mul32,
        Opcode::Addi => Addi,
        Opcode::Andi => Andi,
        Opcode::Ori => Ori,
        Opcode::Xori => Xori,
        Opcode::Shli => {
            op.imm = (ins.imm & 63) as u64;
            Shli
        }
        Opcode::Shrui => {
            op.imm = (ins.imm & 63) as u64;
            Shrui
        }
        Opcode::Shrsi => {
            op.imm = (ins.imm & 63) as u64;
            Shrsi
        }
        Opcode::Rotl32i => {
            op.imm = (ins.imm & 31) as u64;
            Rotl32i
        }
        Opcode::Rotr32i => {
            op.imm = (ins.imm & 31) as u64;
            Rotr32i
        }
        Opcode::Add32i => {
            op.imm = ins.imm as u32 as u64;
            Add32i
        }
        Opcode::Ld8u | Opcode::Ld16u | Opcode::Ld32u | Opcode::Ld64 => {
            op.sz = match ins.op {
                Opcode::Ld8u => 1,
                Opcode::Ld16u => 2,
                Opcode::Ld32u => 4,
                _ => 8,
            };
            Ld
        }
        Opcode::St8 | Opcode::St16 | Opcode::St32 | Opcode::St64 => {
            op.sz = match ins.op {
                Opcode::St8 => 1,
                Opcode::St16 => 2,
                Opcode::St32 => 4,
                _ => 8,
            };
            St
        }
        Opcode::Jmp => {
            op.imm = next.wrapping_add(sx(ins.imm));
            TJmp
        }
        Opcode::Beq | Opcode::Bne | Opcode::Bltu | Opcode::Bgeu | Opcode::Blts | Opcode::Bges => {
            op.imm = next.wrapping_add(sx(ins.imm));
            match ins.op {
                Opcode::Beq => TBeq,
                Opcode::Bne => TBne,
                Opcode::Bltu => TBltu,
                Opcode::Bgeu => TBgeu,
                Opcode::Blts => TBlts,
                _ => TBges,
            }
        }
        Opcode::Call => {
            op.imm = next.wrapping_add(sx(ins.imm));
            TCall
        }
        Opcode::Callr => TCallr,
        Opcode::Ret => TRet,
        Opcode::Ldpc => {
            // Pre-resolved position-independent constant.
            op.imm = next;
            LImm
        }
        Opcode::Jmpr => TJmpr,
        Opcode::Ocall => {
            op.imm = sx(ins.imm);
            TOcall
        }
        Opcode::Intrin => {
            op.imm = sx(ins.imm);
            TIntrin
        }
    };
    op
}

fn is_branch(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Beq | Opcode::Bne | Opcode::Bltu | Opcode::Bgeu | Opcode::Blts | Opcode::Bges
    )
}

fn is_load(op: Opcode) -> bool {
    matches!(op, Opcode::Ld8u | Opcode::Ld16u | Opcode::Ld32u | Opcode::Ld64)
}

fn is_store(op: Opcode) -> bool {
    matches!(op, Opcode::St8 | Opcode::St16 | Opcode::St32 | Opcode::St64)
}

fn mem_size(op: Opcode) -> u8 {
    match op {
        Opcode::Ld8u | Opcode::St8 => 1,
        Opcode::Ld16u | Opcode::St16 => 2,
        Opcode::Ld32u | Opcode::St32 => 4,
        _ => 8,
    }
}

/// Tries to fuse a macro-op starting at `idx`; returns the op plus the
/// number of source instructions it absorbs. Fusions preserve the exact
/// architectural register state at every observable point (each fused
/// handler performs the same register writes in the same order), so a
/// mid-op fault reconstructs interpreter-identical state.
fn try_fuse(instrs: &[Instr], idx: usize, page: u64) -> Option<(LOp, usize)> {
    use LKind::*;
    let i0 = instrs[idx];
    let i1 = if idx + 1 < instrs.len() { Some(instrs[idx + 1]) } else { None };
    let i2 = if idx + 2 < instrs.len() { Some(instrs[idx + 2]) } else { None };
    let off = idx as u16;

    // movi d, lo ; movhi d, hi  →  d = full 64-bit constant (la expansion).
    if i0.op == Opcode::Movi {
        if let Some(n1) = i1 {
            if n1.op == Opcode::Movhi && n1.a == i0.a {
                let t = i0.a;
                let full = (i0.imm as u32 as u64) | ((n1.imm as u32 as u64) << 32);
                // …and if the constant feeds `add d,t,q ; ld e,[d+imm]`
                // (either add operand order), collapse the whole table
                // lookup into one op that still writes t and d.
                if let Some(n2) = i2 {
                    if n2.op == Opcode::Add && (n2.b == t || n2.c == t) {
                        let q = if n2.b == t { n2.c } else { n2.b };
                        if idx + 3 < instrs.len() {
                            let n3 = instrs[idx + 3];
                            if is_load(n3.op) && n3.b == n2.a {
                                return Some((
                                    LOp {
                                        kind: TabLd,
                                        a: n3.a,
                                        b: q,
                                        c: n2.a,
                                        off,
                                        retire: 4,
                                        sz: mem_size(n3.op) | (t << 4),
                                        imm: sx(n3.imm),
                                        aux: full,
                                    },
                                    4,
                                ));
                            }
                        }
                    }
                }
                return Some((
                    LOp { kind: LImm, a: t, b: 0, c: 0, off, retire: 2, sz: 0, imm: full, aux: 0 },
                    2,
                ));
            }
            // movi x, k ; conditional branch  →  fused bound check (the
            // dominant loop-header shape). The movi still writes x.
            if is_branch(n1.op) {
                let mut op = lower_one(n1, idx + 1, page);
                op.off = off;
                op.retire = 2;
                op.sz = 2; // pre-movi marker
                op.c = i0.a;
                op.aux = sx(i0.imm);
                return Some((op, 2));
            }
        }
    }

    // addi t, p, k ; ld d, [t+imm]  →  fused address generation + load.
    if i0.op == Opcode::Addi {
        if let Some(n1) = i1 {
            if is_load(n1.op) && n1.b == i0.a {
                return Some((
                    LOp {
                        kind: AddiLd,
                        a: n1.a,
                        b: i0.b,
                        c: 0,
                        off,
                        retire: 2,
                        sz: mem_size(n1.op) | (i0.a << 4),
                        imm: sx(n1.imm),
                        aux: sx(i0.imm),
                    },
                    2,
                ));
            }
        }
        // addi x, x, k ; conditional branch  →  fused loop back-edge.
        if i0.a == i0.b {
            if let Some(n1) = i1 {
                if is_branch(n1.op) {
                    let mut op = lower_one(n1, idx + 1, page);
                    op.off = off;
                    op.retire = 2;
                    op.sz = 1; // pre-addi marker
                    op.c = i0.a;
                    op.aux = sx(i0.imm);
                    return Some((op, 2));
                }
            }
        }
    }

    // add t, p, q ; ld d, [t+imm]  →  fused indexed load.
    if i0.op == Opcode::Add {
        if let Some(n1) = i1 {
            if is_load(n1.op) && n1.b == i0.a {
                return Some((
                    LOp {
                        kind: AddLd,
                        a: n1.a,
                        b: i0.b,
                        c: i0.c,
                        off,
                        retire: 2,
                        sz: mem_size(n1.op) | (i0.a << 4),
                        imm: sx(n1.imm),
                        aux: 0,
                    },
                    2,
                ));
            }
        }
    }

    // shli u, s, k ; {add|or} e, ·, u  →  fused scaled index (u is still
    // written). With a trailing `ld e2,[e+imm]` the whole `tab[i*w]`
    // access collapses into one op.
    if i0.op == Opcode::Shli {
        if let Some(n1) = i1 {
            let u = i0.a;
            if n1.op == Opcode::Add && (n1.b == u || n1.c == u) {
                let other = if n1.b == u { n1.c } else { n1.b };
                if let Some(n2) = i2 {
                    if is_load(n2.op) && n2.b == n1.a {
                        return Some((
                            LOp {
                                kind: SlLd,
                                a: n2.a,
                                b: other,
                                c: i0.b,
                                off,
                                retire: 3,
                                sz: mem_size(n2.op),
                                imm: sx(n2.imm),
                                aux: (i0.imm as u64 & 63)
                                    | ((u as u64) << 8)
                                    | ((n1.a as u64) << 16),
                            },
                            3,
                        ));
                    }
                }
                return Some((
                    LOp {
                        kind: AddSl,
                        a: n1.a,
                        b: other,
                        c: i0.b,
                        off,
                        retire: 2,
                        sz: u << 4,
                        imm: i0.imm as u64 & 63,
                        aux: 0,
                    },
                    2,
                ));
            }
            if n1.op == Opcode::Or && (n1.b == u || n1.c == u) {
                let other = if n1.b == u { n1.c } else { n1.b };
                return Some((
                    LOp {
                        kind: OrSl,
                        a: n1.a,
                        b: other,
                        c: i0.b,
                        off,
                        retire: 2,
                        sz: u << 4,
                        imm: i0.imm as u64 & 63,
                        aux: 0,
                    },
                    2,
                ));
            }
        }
    }

    // shrui x, s, k ; andi x, x, m  →  fused bitfield extract (the
    // intermediate value dies in x, so only the final write is visible).
    if i0.op == Opcode::Shrui {
        if let Some(n1) = i1 {
            if n1.op == Opcode::Andi && n1.a == i0.a && n1.b == i0.a {
                return Some((
                    LOp {
                        kind: ShrAndi,
                        a: i0.a,
                        b: i0.b,
                        c: 0,
                        off,
                        retire: 2,
                        sz: 0,
                        imm: i0.imm as u64 & 63,
                        aux: sx(n1.imm),
                    },
                    2,
                ));
            }
        }
    }

    // shru x, s, v ; andi x, x, m  →  variable-shift bitfield extract.
    if i0.op == Opcode::Shru {
        if let Some(n1) = i1 {
            if n1.op == Opcode::Andi && n1.a == i0.a && n1.b == i0.a {
                return Some((
                    LOp {
                        kind: ShruAndi,
                        a: i0.a,
                        b: i0.b,
                        c: i0.c,
                        off,
                        retire: 2,
                        sz: 0,
                        imm: 0,
                        aux: sx(n1.imm),
                    },
                    2,
                ));
            }
        }
    }

    // xor t, b, c ; {xor t,·,· | st t,[d+k]}  →  three-way mix or
    // compute-and-store (SHA-1 parity, AES state writeback).
    if i0.op == Opcode::Xor {
        if let Some(n1) = i1 {
            if n1.op == Opcode::Xor && n1.a == i0.a && (n1.b == i0.a || n1.c == i0.a) {
                let x = if n1.b == i0.a { n1.c } else { n1.b };
                return Some((
                    LOp {
                        kind: Xor3,
                        a: i0.a,
                        b: i0.b,
                        c: i0.c,
                        off,
                        retire: 2,
                        sz: x << 4,
                        imm: 0,
                        aux: 0,
                    },
                    2,
                ));
            }
            if is_store(n1.op) && n1.a == i0.a {
                return Some((
                    LOp {
                        kind: XorSt,
                        a: i0.a,
                        b: i0.b,
                        c: i0.c,
                        off,
                        retire: 2,
                        sz: mem_size(n1.op) | (n1.b << 4),
                        imm: 0,
                        aux: sx(n1.imm),
                    },
                    2,
                ));
            }
        }
    }

    // add t, b, c ; add t, t, d  →  three-way sum (64- and 32-bit forms;
    // d must not alias t, whose intermediate value it would read).
    if i0.op == Opcode::Add || i0.op == Opcode::Add32 {
        if let Some(n1) = i1 {
            if n1.op == i0.op && n1.a == i0.a && (n1.b == i0.a || n1.c == i0.a) {
                let d = if n1.b == i0.a { n1.c } else { n1.b };
                if d != i0.a {
                    return Some((
                        LOp {
                            kind: if i0.op == Opcode::Add { Add3 } else { Add32_3 },
                            a: i0.a,
                            b: i0.b,
                            c: i0.c,
                            off,
                            retire: 2,
                            sz: d << 4,
                            imm: 0,
                            aux: 0,
                        },
                        2,
                    ));
                }
            }
        }
    }

    // rotl32i t, s, k ; add32 t, t, x  →  fused rotate-accumulate (the
    // SHA-1 round schedule).
    if i0.op == Opcode::Rotl32i {
        if let Some(n1) = i1 {
            if n1.op == Opcode::Add32 && n1.a == i0.a && (n1.b == i0.a || n1.c == i0.a) {
                let x = if n1.b == i0.a { n1.c } else { n1.b };
                if x != i0.a {
                    return Some((
                        LOp {
                            kind: RotlAdd32,
                            a: i0.a,
                            b: i0.b,
                            c: x,
                            off,
                            retire: 2,
                            sz: 0,
                            imm: i0.imm as u64 & 31,
                            aux: 0,
                        },
                        2,
                    ));
                }
            }
        }
    }

    // mov a, b ; mov c, d  →  paired register copy (rotation shuffles).
    if i0.op == Opcode::Mov {
        if let Some(n1) = i1 {
            if n1.op == Opcode::Mov {
                return Some((
                    LOp {
                        kind: Mov2,
                        a: i0.a,
                        b: i0.b,
                        c: n1.a,
                        off,
                        retire: 2,
                        sz: n1.b << 4,
                        imm: 0,
                        aux: 0,
                    },
                    2,
                ));
            }
        }
    }

    if is_load(i0.op) {
        if let Some(n1) = i1 {
            // ld d, [b+imm] ; xor e, e, d  →  fused mix step.
            if n1.op == Opcode::Xor && n1.b == n1.a && n1.c == i0.a && n1.a != i0.b {
                return Some((
                    LOp {
                        kind: LdXor,
                        a: i0.a,
                        b: i0.b,
                        c: n1.a,
                        off,
                        retire: 2,
                        sz: mem_size(i0.op),
                        imm: sx(i0.imm),
                        aux: 0,
                    },
                    2,
                ));
            }
            // ld d, [b+imm] ; add32 e, e, d  →  fused accumulate (hash
            // word feeds, e.g. `w[i]` into the SHA-1 round sum).
            if n1.op == Opcode::Add32 && n1.b == n1.a && n1.c == i0.a && n1.a != i0.b {
                return Some((
                    LOp {
                        kind: LdAdd32,
                        a: i0.a,
                        b: i0.b,
                        c: n1.a,
                        off,
                        retire: 2,
                        sz: mem_size(i0.op),
                        imm: sx(i0.imm),
                        aux: 0,
                    },
                    2,
                ));
            }
            // ld d, [b+imm] ; st d, [b2+imm2]  →  fused copy (memcpy body).
            if is_store(n1.op) && n1.a == i0.a && mem_size(n1.op) == mem_size(i0.op) {
                return Some((
                    LOp {
                        kind: LdSt,
                        a: i0.a,
                        b: i0.b,
                        c: n1.b,
                        off,
                        retire: 2,
                        sz: mem_size(i0.op),
                        imm: sx(i0.imm),
                        aux: sx(n1.imm),
                    },
                    2,
                ));
            }
        }
    }

    None
}

fn is_terminator(k: LKind) -> bool {
    use LKind::*;
    matches!(k, TJmp | TCall | TCallr | TRet | TJmpr | THalt | TOcall | TIntrin | TIllegal | TFall)
}

fn is_side_branch(k: LKind) -> bool {
    use LKind::*;
    matches!(k, TBeq | TBne | TBltu | TBgeu | TBlts | TBges)
}

/// The opposite condition — used to store backward branches exit-inverted.
fn invert(k: LKind) -> LKind {
    use LKind::*;
    match k {
        TBeq => TBne,
        TBne => TBeq,
        TBltu => TBgeu,
        TBgeu => TBltu,
        TBlts => TBges,
        TBges => TBlts,
        other => other,
    }
}

/// `addr` as an instruction index into the trace's view (`n` decoded
/// instructions starting at `page`), if it is aligned and in range. With a
/// pair view (`n == 2 * INSTRS_PER_PAGE`) this also resolves addresses on
/// the sequentially next page, so jumps, calls and loop back-edges that
/// straddle the boundary stay inside the trace.
#[inline]
fn trace_idx(addr: u64, page: u64, n: usize) -> Option<usize> {
    if addr >= page && addr < page + n as u64 * INSTR_SIZE && addr & (INSTR_SIZE - 1) == 0 {
        Some(((addr - page) >> 3) as usize)
    } else {
        None
    }
}

/// Upper bound on guest instructions lowered into one trace. Hot loops
/// unroll until the cap, so block-entry overhead amortizes over ~this many
/// instructions; it is also the worst-case fuel sliver delegated to the
/// interpreter when a run's remaining budget is smaller than one trace.
const MAX_TRACE_INSTRS: usize = 192;

/// Builds the trace superblock starting at instruction index `start`:
/// straight-line lowering that additionally follows same-page
/// unconditional jumps ([`LKind::Hop`]) and continues through conditional
/// branches as side exits — forward branches exit when taken, backward
/// branches (loop back-edges) are stored inverted so the hot direction
/// stays inside the trace and the loop body unrolls up to
/// [`MAX_TRACE_INSTRS`].
fn translate_block(instrs: &[Instr], page: u64, start: usize) -> (Block, bool) {
    let n = instrs.len();
    let mut ops = Vec::new();
    let mut cost = 0u64;
    let mut idx = start;
    let mut budget = MAX_TRACE_INSTRS;
    // Whether any lowered instruction came from beyond the first page —
    // the caller then records the cross-page dependency.
    let mut crossed = false;
    // Translation-time call stack: the continuation index expected by each
    // followed same-page call, so the matching `ret` can be guarded
    // ([`LKind::RetHop`]) instead of ending the trace.
    let mut ret_stack: Vec<usize> = Vec::new();
    loop {
        if idx >= n || budget == 0 {
            // View end or trace cap: continue at the next untranslated pc.
            let cont = if idx >= n {
                page + n as u64 * INSTR_SIZE
            } else {
                page + (idx as u64) * INSTR_SIZE
            };
            ops.push(LOp {
                kind: LKind::TFall,
                a: 0,
                b: 0,
                c: 0,
                off: idx.min(n) as u16,
                retire: 0,
                sz: 0,
                imm: cont,
                aux: 0,
            });
            break;
        }
        crossed |= idx >= INSTRS_PER_PAGE;
        let (mut op, len) = match try_fuse(instrs, idx, page) {
            Some((op, len)) => (op, len),
            None => (lower_one(instrs[idx], idx, page), 1),
        };
        crossed |= idx + len > INSTRS_PER_PAGE;
        budget = budget.saturating_sub(len);
        if op.kind == LKind::TJmp {
            if let Some(t) = trace_idx(op.imm, page, n) {
                // Followed jump: retire it and keep lowering at the target.
                op.kind = LKind::Hop;
                cost += 1;
                ops.push(op);
                idx = t;
                continue;
            }
        }
        if op.kind == LKind::TCall {
            if let Some(t) = trace_idx(op.imm, page, n) {
                // Followed call: push the return address in-trace and keep
                // lowering inside the callee.
                op.kind = LKind::HCall;
                cost += 1;
                ops.push(op);
                ret_stack.push(idx + 1);
                idx = t;
                continue;
            }
        }
        if op.kind == LKind::TRet {
            if let Some(rid) = ret_stack.pop() {
                // Matching ret of a followed call: guard against the
                // expected continuation and keep lowering there.
                op.kind = LKind::RetHop;
                op.imm = page + (rid as u64) * INSTR_SIZE;
                cost += 1;
                ops.push(op);
                idx = rid;
                continue;
            }
        }
        if is_side_branch(op.kind) {
            let fall_idx = idx + len;
            match trace_idx(op.imm, page, n) {
                Some(t) if t < idx => {
                    // Backward branch: follow the taken direction (the hot
                    // loop edge); the stored condition is inverted and the
                    // exit target is the fall-through.
                    op.kind = invert(op.kind);
                    op.imm = page + (fall_idx as u64) * INSTR_SIZE;
                    cost += op.retire as u64;
                    ops.push(op);
                    idx = t;
                }
                _ => {
                    // Forward (or cross-page) branch: follow fall-through,
                    // exit when taken.
                    cost += op.retire as u64;
                    ops.push(op);
                    idx = fall_idx;
                }
            }
            continue;
        }
        cost += op.retire as u64;
        let done = is_terminator(op.kind);
        ops.push(op);
        idx += len;
        if done {
            break;
        }
    }
    (Block { cost, watch: u64::MAX, ops: ops.into_boxed_slice() }, crossed)
}

/// How a block execution ended. Every arm reports `consumed`, the guest
/// instructions actually retired — equal to the block cost only when the
/// trace ran to its end, smaller on side exits; the fuel difference is
/// refunded by the caller.
enum BlockExit {
    /// Control continues at `next`. `probe` forces a generation re-check
    /// even on the same page (set after intrinsics, which may write
    /// arbitrary guest memory).
    Seq { next: u64, probe: bool, consumed: u64 },
    /// A store (or call push) hit the executing page: the translation is
    /// stale from `consumed` instructions in; continue at `next` after
    /// revalidation.
    Patched { next: u64, consumed: u64 },
    /// Guest `halt`; pc at `next`.
    Halt { next: u64, consumed: u64 },
    /// Guest `ocall`; pc at `next`.
    Ocall { next: u64, index: i32, consumed: u64 },
    /// Guest `intrin` completed; `extra` is the bulk-fuel charge the bus
    /// reported beyond the instruction itself. The caller charges it and
    /// re-probes generations (intrinsics may write arbitrary guest memory).
    Intrin { next: u64, consumed: u64, extra: u64 },
    /// A fault `consumed` instructions in, at guest address `at`.
    Fault { fault: VmFault, at: u64, consumed: u64 },
}

/// Whether a `size`-byte access at `ea` touches `page`.
#[inline]
fn hits_page(ea: u64, size: u64, page: u64) -> bool {
    (ea & !PAGE_MASK) == page || (ea.wrapping_add(size - 1) & !PAGE_MASK) == page
}

/// Whether an access touches the executing page or the block's watched
/// cross-page neighbour (`u64::MAX` = none; unmappable, so it never hits).
#[inline]
fn hits_trace(ea: u64, size: u64, page: u64, watch: u64) -> bool {
    hits_page(ea, size, page) || hits_page(ea, size, watch)
}

/// Executes one superblock. The caller has already charged the full block
/// cost; early exits report `consumed` so the difference can be refunded.
/// `watch` is the block's cross-page dependency ([`Block::watch`]): stores
/// that hit it invalidate lowered instructions just like own-page stores.
fn exec_block<B: Bus + ?Sized>(
    ops: &[LOp],
    page: u64,
    watch: u64,
    r: &mut [u64; NUM_REGS],
    dtlb: &mut DTlb,
    bus: &mut B,
) -> BlockExit {
    use LKind::*;
    let mut done: u64 = 0;
    for op in ops {
        // Register indices are < 16 by `Instr::decode`; the mask lets the
        // compiler drop the bounds checks on every register access.
        let a = (op.a & 0xF) as usize;
        let b = (op.b & 0xF) as usize;
        let c = (op.c & 0xF) as usize;
        match op.kind {
            MovR => r[a] = r[b],
            LImm => r[a] = op.imm,
            MovHi => r[a] = (r[a] & 0xFFFF_FFFF) | op.imm,
            Add => r[a] = r[b].wrapping_add(r[c]),
            Sub => r[a] = r[b].wrapping_sub(r[c]),
            Mul => r[a] = r[b].wrapping_mul(r[c]),
            Divu | Remu => {
                let d = r[c];
                if d == 0 {
                    let at = page + op.off as u64 * INSTR_SIZE;
                    return BlockExit::Fault {
                        fault: VmFault::DivideByZero { addr: at },
                        at,
                        consumed: done + 1,
                    };
                }
                r[a] = if op.kind == Divu { r[b] / d } else { r[b] % d };
            }
            And => r[a] = r[b] & r[c],
            Or => r[a] = r[b] | r[c],
            Xor => r[a] = r[b] ^ r[c],
            Shl => r[a] = r[b] << (r[c] & 63),
            Shru => r[a] = r[b] >> (r[c] & 63),
            Shrs => r[a] = ((r[b] as i64) >> (r[c] & 63)) as u64,
            Rotl32 => r[a] = (r[b] as u32).rotate_left(r[c] as u32 & 31) as u64,
            Rotr32 => r[a] = (r[b] as u32).rotate_right(r[c] as u32 & 31) as u64,
            Add32 => r[a] = (r[b] as u32).wrapping_add(r[c] as u32) as u64,
            Sub32 => r[a] = (r[b] as u32).wrapping_sub(r[c] as u32) as u64,
            Mul32 => r[a] = (r[b] as u32).wrapping_mul(r[c] as u32) as u64,
            Addi => r[a] = r[b].wrapping_add(op.imm),
            Andi => r[a] = r[b] & op.imm,
            Ori => r[a] = r[b] | op.imm,
            Xori => r[a] = r[b] ^ op.imm,
            Shli => r[a] = r[b] << op.imm,
            Shrui => r[a] = r[b] >> op.imm,
            Shrsi => r[a] = ((r[b] as i64) >> op.imm) as u64,
            Rotl32i => r[a] = (r[b] as u32).rotate_left(op.imm as u32) as u64,
            Rotr32i => r[a] = (r[b] as u32).rotate_right(op.imm as u32) as u64,
            Add32i => r[a] = (r[b] as u32).wrapping_add(op.imm as u32) as u64,
            Ld => {
                let ea = r[b].wrapping_add(op.imm);
                match dtlb.load(bus, ea, (op.sz & 0xF) as usize) {
                    Ok(v) => r[a] = v,
                    Err(fault) => {
                        let at = page + op.off as u64 * INSTR_SIZE;
                        return BlockExit::Fault { fault, at, consumed: done + 1 };
                    }
                }
            }
            St => {
                let ea = r[b].wrapping_add(op.imm);
                let size = (op.sz & 0xF) as u64;
                if let Err(fault) = dtlb.store(bus, ea, size as usize, r[a]) {
                    let at = page + op.off as u64 * INSTR_SIZE;
                    return BlockExit::Fault { fault, at, consumed: done + 1 };
                }
                if hits_trace(ea, size, page, watch) {
                    return BlockExit::Patched {
                        next: page + (op.off as u64 + 1) * INSTR_SIZE,
                        consumed: done + 1,
                    };
                }
            }
            LdSt => {
                let size = op.sz as u64;
                let lea = r[b].wrapping_add(op.imm);
                match dtlb.load(bus, lea, size as usize) {
                    Ok(v) => r[a] = v,
                    Err(fault) => {
                        let at = page + op.off as u64 * INSTR_SIZE;
                        return BlockExit::Fault { fault, at, consumed: done + 1 };
                    }
                }
                let sea = r[c].wrapping_add(op.aux);
                if let Err(fault) = dtlb.store(bus, sea, size as usize, r[a]) {
                    let at = page + (op.off as u64 + 1) * INSTR_SIZE;
                    return BlockExit::Fault { fault, at, consumed: done + 2 };
                }
                if hits_trace(sea, size, page, watch) {
                    return BlockExit::Patched {
                        next: page + (op.off as u64 + 2) * INSTR_SIZE,
                        consumed: done + 2,
                    };
                }
            }
            LdXor => {
                let ea = r[b].wrapping_add(op.imm);
                match dtlb.load(bus, ea, op.sz as usize) {
                    Ok(v) => {
                        r[a] = v;
                        r[c] ^= v;
                    }
                    Err(fault) => {
                        let at = page + op.off as u64 * INSTR_SIZE;
                        return BlockExit::Fault { fault, at, consumed: done + 1 };
                    }
                }
            }
            AddLd | AddiLd => {
                let t = if op.kind == AddLd {
                    r[b].wrapping_add(r[c])
                } else {
                    r[b].wrapping_add(op.aux)
                };
                r[(op.sz >> 4) as usize] = t;
                // The load is the op's last source instruction.
                let lead = op.retire as u64 - 1;
                let ea = t.wrapping_add(op.imm);
                match dtlb.load(bus, ea, (op.sz & 0xF) as usize) {
                    Ok(v) => r[a] = v,
                    Err(fault) => {
                        let at = page + (op.off as u64 + lead) * INSTR_SIZE;
                        return BlockExit::Fault { fault, at, consumed: done + lead + 1 };
                    }
                }
            }
            TabLd => {
                // `la` writes the table base into t, the add writes the
                // address into c; both writes are architectural. r[b] is
                // read after the base write (b may alias t).
                r[(op.sz >> 4) as usize] = op.aux;
                let s = op.aux.wrapping_add(r[b]);
                r[c] = s;
                let lead = op.retire as u64 - 1;
                let ea = s.wrapping_add(op.imm);
                match dtlb.load(bus, ea, (op.sz & 0xF) as usize) {
                    Ok(v) => r[a] = v,
                    Err(fault) => {
                        let at = page + (op.off as u64 + lead) * INSTR_SIZE;
                        return BlockExit::Fault { fault, at, consumed: done + lead + 1 };
                    }
                }
            }
            AddSl | OrSl => {
                // r[b] is read after the scaled-index write (b may alias u).
                let sh = r[c] << op.imm;
                r[(op.sz >> 4) as usize] = sh;
                r[a] = if op.kind == AddSl { r[b].wrapping_add(sh) } else { r[b] | sh };
            }
            SlLd => {
                let k = op.aux & 63;
                let u = ((op.aux >> 8) & 0xF) as usize;
                let d = ((op.aux >> 16) & 0xF) as usize;
                let sh = r[c] << k;
                r[u] = sh;
                let s = r[b].wrapping_add(sh);
                r[d] = s;
                let lead = 2u64;
                let ea = s.wrapping_add(op.imm);
                match dtlb.load(bus, ea, (op.sz & 0xF) as usize) {
                    Ok(v) => r[a] = v,
                    Err(fault) => {
                        let at = page + (op.off as u64 + lead) * INSTR_SIZE;
                        return BlockExit::Fault { fault, at, consumed: done + lead + 1 };
                    }
                }
            }
            ShrAndi => r[a] = (r[b] >> op.imm) & op.aux,
            ShruAndi => r[a] = (r[b] >> (r[c] & 63)) & op.aux,
            Add3 => {
                r[a] = r[b].wrapping_add(r[c]).wrapping_add(r[(op.sz >> 4) as usize]);
            }
            Add32_3 => {
                let s = (r[b] as u32)
                    .wrapping_add(r[c] as u32)
                    .wrapping_add(r[(op.sz >> 4) as usize] as u32);
                r[a] = s as u64;
            }
            RotlAdd32 => {
                r[a] = (r[b] as u32).rotate_left(op.imm as u32).wrapping_add(r[c] as u32) as u64;
            }
            XorSt => {
                let v = r[b] ^ r[c];
                r[a] = v;
                // The store base is read after the xor write (it may alias).
                let ea = r[(op.sz >> 4) as usize].wrapping_add(op.aux);
                let size = (op.sz & 0xF) as u64;
                if let Err(fault) = dtlb.store(bus, ea, size as usize, v) {
                    let at = page + (op.off as u64 + 1) * INSTR_SIZE;
                    return BlockExit::Fault { fault, at, consumed: done + 2 };
                }
                if hits_trace(ea, size, page, watch) {
                    return BlockExit::Patched {
                        next: page + (op.off as u64 + 2) * INSTR_SIZE,
                        consumed: done + 2,
                    };
                }
            }
            Xor3 => {
                // The intermediate two-way xor is written first so the
                // third operand sees it when it aliases the destination.
                r[a] = r[b] ^ r[c];
                r[a] ^= r[(op.sz >> 4) as usize];
            }
            Mov2 => {
                r[a] = r[b];
                r[c] = r[(op.sz >> 4) as usize];
            }
            LdAdd32 => {
                let ea = r[b].wrapping_add(op.imm);
                match dtlb.load(bus, ea, (op.sz & 0xF) as usize) {
                    Ok(v) => {
                        r[a] = v;
                        r[c] = (r[c] as u32).wrapping_add(v as u32) as u64;
                    }
                    Err(fault) => {
                        let at = page + op.off as u64 * INSTR_SIZE;
                        return BlockExit::Fault { fault, at, consumed: done + 1 };
                    }
                }
            }
            Hop => {}
            HCall => {
                let ret = page + (op.off as u64 + 1) * INSTR_SIZE;
                let sp = r[REG_SP as usize].wrapping_sub(8);
                if let Err(fault) = dtlb.store(bus, sp, 8, ret) {
                    let at = page + op.off as u64 * INSTR_SIZE;
                    return BlockExit::Fault { fault, at, consumed: done + 1 };
                }
                r[REG_SP as usize] = sp;
                if hits_trace(sp, 8, page, watch) {
                    return BlockExit::Patched { next: op.imm, consumed: done + 1 };
                }
                // Control continues in-trace at the callee's lowering.
            }
            RetHop => {
                let sp = r[REG_SP as usize];
                match dtlb.load(bus, sp, 8) {
                    Ok(v) => {
                        r[REG_SP as usize] = sp.wrapping_add(8);
                        if v != op.imm {
                            // The guest redirected the return: leave the
                            // trace for the actual target.
                            return BlockExit::Seq { next: v, probe: false, consumed: done + 1 };
                        }
                        // Expected return: continue at the caller's
                        // continuation, the next op in the trace.
                    }
                    Err(fault) => {
                        let at = page + op.off as u64 * INSTR_SIZE;
                        return BlockExit::Fault { fault, at, consumed: done + 1 };
                    }
                }
            }
            TJmp => return BlockExit::Seq { next: op.imm, probe: false, consumed: done + 1 },
            TBeq | TBne | TBltu | TBgeu | TBlts | TBges => {
                // Fused pre-op: 1 = loop-step addi, 2 = bound-constant movi.
                if op.sz == 1 {
                    r[c] = r[c].wrapping_add(op.aux);
                } else if op.sz == 2 {
                    r[c] = op.aux;
                }
                let (x, y) = (r[a], r[b]);
                let exit = match op.kind {
                    TBeq => x == y,
                    TBne => x != y,
                    TBltu => x < y,
                    TBgeu => x >= y,
                    TBlts => (x as i64) < (y as i64),
                    _ => (x as i64) >= (y as i64),
                };
                if exit {
                    return BlockExit::Seq {
                        next: op.imm,
                        probe: false,
                        consumed: done + op.retire as u64,
                    };
                }
                // Not exiting: the trace continues with the next op.
            }
            TCall | TCallr => {
                let ret = page + (op.off as u64 + 1) * INSTR_SIZE;
                let target = if op.kind == TCall { op.imm } else { r[b] };
                let sp = r[REG_SP as usize].wrapping_sub(8);
                if let Err(fault) = dtlb.store(bus, sp, 8, ret) {
                    let at = page + op.off as u64 * INSTR_SIZE;
                    return BlockExit::Fault { fault, at, consumed: done + 1 };
                }
                r[REG_SP as usize] = sp;
                if hits_trace(sp, 8, page, watch) {
                    return BlockExit::Patched { next: target, consumed: done + 1 };
                }
                return BlockExit::Seq { next: target, probe: false, consumed: done + 1 };
            }
            TRet => {
                let sp = r[REG_SP as usize];
                match dtlb.load(bus, sp, 8) {
                    Ok(v) => {
                        r[REG_SP as usize] = sp.wrapping_add(8);
                        return BlockExit::Seq { next: v, probe: false, consumed: done + 1 };
                    }
                    Err(fault) => {
                        let at = page + op.off as u64 * INSTR_SIZE;
                        return BlockExit::Fault { fault, at, consumed: done + 1 };
                    }
                }
            }
            TJmpr => return BlockExit::Seq { next: r[b], probe: false, consumed: done + 1 },
            THalt => {
                return BlockExit::Halt {
                    next: page + (op.off as u64 + 1) * INSTR_SIZE,
                    consumed: done + 1,
                }
            }
            TOcall => {
                return BlockExit::Ocall {
                    next: page + (op.off as u64 + 1) * INSTR_SIZE,
                    index: op.imm as i32,
                    consumed: done + 1,
                }
            }
            TIntrin => {
                // The interpreter commits pc past the intrin *before*
                // dispatching, so an intrinsic fault reports that pc.
                let next = page + (op.off as u64 + 1) * INSTR_SIZE;
                match bus.intrinsic(op.imm as i32, r) {
                    Ok(extra) => {
                        return BlockExit::Intrin { next, consumed: done + 1, extra };
                    }
                    Err(fault) => return BlockExit::Fault { fault, at: next, consumed: done + 1 },
                }
            }
            TIllegal => {
                let at = page + op.off as u64 * INSTR_SIZE;
                return BlockExit::Fault {
                    fault: VmFault::IllegalInstruction { addr: at },
                    at,
                    consumed: done + 1,
                };
            }
            TFall => return BlockExit::Seq { next: op.imm, probe: false, consumed: done },
        }
        done += op.retire as u64;
    }
    unreachable!("every superblock ends with a terminator")
}

/// Translates the block at `idx` in `slot`, offering the translator a
/// two-page view when the sequentially next page is decodable — so traces
/// (and hot loops) that straddle a page boundary stay in one superblock
/// instead of ping-ponging through the dispatcher every iteration.
/// Returns `None` when decoding the neighbour recycled this page's dcache
/// slot (possible only at cache capacity); the caller then revalidates.
fn translate_with_pair<B: Bus + ?Sized>(
    vm: &mut Vm,
    bus: &mut B,
    slot: usize,
    page: u64,
    idx: usize,
) -> Option<u32> {
    let next_page = page + CODE_PAGE_SIZE;
    let Some(slot2) = vm.dcache.validate(bus, next_page) else {
        return Some(vm.trans.translate(slot, idx, vm.dcache.instrs(slot), page, None));
    };
    if vm.dcache.slot_page(slot) != page {
        return None;
    }
    let gen2 = vm.dcache.generation(slot2);
    // Crossing blocks already in the slot were translated against an older
    // neighbour generation: drop them so every crossing block in the slot
    // shares one (dep_page, dep_gen) pair.
    let (dep_page, dep_gen) = {
        let s = &vm.trans.slots[slot];
        (s.dep_page, s.dep_gen)
    };
    if dep_page != u64::MAX && (dep_page, dep_gen) != (next_page, gen2) {
        vm.trans.drop_dep(slot);
    }
    let mut view: Vec<Instr> = Vec::with_capacity(2 * INSTRS_PER_PAGE);
    view.extend_from_slice(vm.dcache.instrs(slot));
    view.extend_from_slice(vm.dcache.instrs(slot2));
    Some(vm.trans.translate(slot, idx, &view, page, Some((next_page, gen2))))
}

/// Runs the VM under superblock translation until an exit or fault,
/// falling back to the interpreter loop wherever translation does not
/// apply. Drives [`Vm::pc`]/[`Vm::retired`]/[`ExecStats`] exactly like the
/// interpreter would.
pub(crate) fn run_superblock<B: Bus + ?Sized>(
    vm: &mut Vm,
    bus: &mut B,
    mut fuel: u64,
) -> Result<Exit, VmFault> {
    loop {
        let pc = vm.pc;
        // Misaligned or untranslatable pc: let the interpreter execute; it
        // bails back here once it lands aligned on a translatable page.
        if pc & (INSTR_SIZE - 1) != 0 {
            match vm.run_interp(bus, fuel, true) {
                InterpOutcome::Done(r) => return r,
                InterpOutcome::Retranslate { fuel_left } => {
                    fuel = fuel_left;
                    continue;
                }
            }
        }
        let page = pc & !PAGE_MASK;
        let Some(slot) = vm.dcache.validate(bus, page) else {
            match vm.run_interp(bus, fuel, true) {
                InterpOutcome::Done(r) => return r,
                InterpOutcome::Retranslate { fuel_left } => {
                    fuel = fuel_left;
                    continue;
                }
            }
        };
        vm.trans.ensure(slot, page, vm.dcache.generation(slot));
        let mut idx = ((pc & PAGE_MASK) >> 3) as usize;
        // Same-page chain: blocks on this page execute without another bus
        // probe. Sound because a store that could change this page's bytes
        // (or a watched neighbour's) exits via `Patched`, and everything
        // else that moves a page's generation (host writes, EWB/ELDU,
        // intrinsics) either cannot happen mid-run or forces `probe`.
        loop {
            let block_id = match vm.trans.block_id(slot, idx) {
                Some(id) => id,
                None => {
                    vm.stats.blocks_translated += 1;
                    match translate_with_pair(vm, bus, slot, page, idx) {
                        Some(id) => id,
                        // Decoding the neighbour recycled this page's
                        // dcache slot: revalidate from the top.
                        None => break,
                    }
                }
            };
            let block = &vm.trans.slots[slot].blocks[block_id as usize];
            let (cost, watch) = (block.cost, block.watch);
            // A crossing block embeds instructions from the neighbour
            // page: its generation must still match the one it was
            // translated against (a store from a chained block, or any
            // write between runs, may have moved it).
            if watch != u64::MAX
                && bus.exec_page_generation(watch) != Some(vm.trans.slots[slot].dep_gen)
            {
                vm.trans.drop_dep(slot);
                continue;
            }
            if fuel < cost {
                // Less fuel than one block: the interpreter finishes the
                // run with exact per-instruction OutOfFuel semantics.
                vm.pc = page + idx as u64 * INSTR_SIZE;
                match vm.run_interp(bus, fuel, false) {
                    InterpOutcome::Done(r) => return r,
                    InterpOutcome::Retranslate { .. } => unreachable!("bail disabled"),
                }
            }
            fuel -= cost;
            vm.stats.blocks_entered += 1;
            let block = &vm.trans.slots[slot].blocks[block_id as usize];
            match exec_block(&block.ops, page, watch, &mut vm.regs, &mut vm.dtlb, bus) {
                BlockExit::Seq { next, probe, consumed } => {
                    fuel += cost - consumed;
                    vm.retired += consumed;
                    vm.stats.trans_retired += consumed;
                    vm.pc = next;
                    if !probe && next & !PAGE_MASK == page && next & (INSTR_SIZE - 1) == 0 {
                        idx = ((next & PAGE_MASK) >> 3) as usize;
                        continue;
                    }
                    break;
                }
                BlockExit::Intrin { next, consumed, extra } => {
                    fuel += cost - consumed;
                    vm.retired += consumed + extra;
                    vm.stats.trans_retired += consumed + extra;
                    vm.pc = next;
                    // The intrinsic may have written guest memory: drop
                    // stale TLB entries, then charge the bulk fuel exactly
                    // like the interpreter (post-work, effects committed).
                    vm.dtlb.revalidate(bus);
                    if fuel < extra {
                        return Err(VmFault::OutOfFuel);
                    }
                    fuel -= extra;
                    break;
                }
                BlockExit::Patched { next, consumed } => {
                    fuel += cost - consumed;
                    vm.retired += consumed;
                    vm.stats.trans_retired += consumed;
                    vm.pc = next;
                    break;
                }
                BlockExit::Halt { next, consumed } => {
                    vm.retired += consumed;
                    vm.stats.trans_retired += consumed;
                    vm.pc = next;
                    return Ok(Exit::Halt(vm.regs[0]));
                }
                BlockExit::Ocall { next, index, consumed } => {
                    vm.retired += consumed;
                    vm.stats.trans_retired += consumed;
                    vm.pc = next;
                    return Ok(Exit::Ocall(index));
                }
                BlockExit::Fault { fault, at, consumed } => {
                    vm.retired += consumed;
                    vm.stats.trans_retired += consumed;
                    vm.pc = at;
                    return Err(fault);
                }
            }
        }
    }
}
