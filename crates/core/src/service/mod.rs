//! Service layer: sharded, readiness-driven event loops serving any
//! [`Listener`] against a shared [`AuthServer`], with graceful shutdown.
//!
//! The accept thread distributes connections round-robin over `workers`
//! shard event loops ([`shard`]). Each shard owns its connections
//! outright — nonblocking wires, per-connection frame reassembly and
//! protocol state machines ([`conn`]), a timer wheel for the read/write
//! deadlines ([`timer`]), and an end-of-tick batch that runs every staged
//! handshake's quote verification and secret-store lookup together. A
//! shard therefore serves thousands of mostly-idle connections from one
//! thread, where the old bounded worker pool held one blocked thread per
//! in-flight connection.
//!
//! [`serve_connection`] — the blocking single-connection loop — remains
//! for the in-process transport and as the simplest reference
//! implementation of the server side of the protocol.

mod conn;
pub mod pool;
mod shard;
mod timer;

pub use pool::{EnclavePool, PoolConfig, PoolStats};

use crate::faults::FaultPlan;
use crate::protocol::{server_error_to_status, STATUS_OK};
use crate::server::AuthServer;
use crate::transport::{BoxedWire, Framed, Limits, Listener};
use std::io;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Per-shard injector depth: how many accepted-but-unadmitted connections
/// may queue per shard before accept backpressures.
const INJECTOR_DEPTH: usize = 256;

/// Tuning for one running service.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Shard event loops (threads). Defaults to `available_parallelism`.
    pub workers: usize,
    /// Wire limits applied to every accepted connection.
    pub limits: Limits,
    /// Stop accepting after this many connections (`None` = unlimited).
    /// Queued and in-flight connections are still served to completion.
    pub max_connections: Option<usize>,
    /// Fault-injection plan (worker panics). `None` in production.
    pub faults: Option<FaultPlan>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: default_workers(),
            limits: Limits::default(),
            max_connections: None,
            faults: None,
        }
    }
}

impl ServiceConfig {
    /// Most shards any config may ask for; far beyond useful, low enough
    /// to catch a unit mix-up (e.g. passing a byte count as a count).
    pub const MAX_WORKERS: usize = 1024;

    /// Config with a connection cap (CLI `--connections` semantics).
    pub fn with_max_connections(mut self, max: Option<usize>) -> Self {
        self.max_connections = max;
        self
    }

    /// Config with an explicit shard count.
    ///
    /// # Panics
    ///
    /// If `workers` is zero — a service with no shards can accept but
    /// never serve, which used to surface as every client hanging until
    /// its timeout. Rejecting at construction makes the mistake loud.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "ServiceConfig: workers must be at least 1");
        self.workers = workers;
        self
    }

    /// Config with different wire limits.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Config with a fault-injection plan (chaos testing).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Checks the config for values that cannot serve: zero or absurd
    /// worker counts, a zero frame limit, zero timeouts, a zero
    /// connection cap. [`serve`] runs this and panics on `Err`, so broken
    /// deployments fail at startup instead of hanging every client.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("workers must be at least 1".into());
        }
        if self.workers > Self::MAX_WORKERS {
            return Err(format!(
                "workers = {} exceeds the {} maximum",
                self.workers,
                Self::MAX_WORKERS
            ));
        }
        if self.limits.max_frame == 0 {
            return Err("limits.max_frame must be nonzero (no frame could ever arrive)".into());
        }
        if self.limits.read_timeout.is_some_and(|t| t.is_zero()) {
            return Err("limits.read_timeout of zero expires every read immediately".into());
        }
        if self.limits.write_timeout.is_some_and(|t| t.is_zero()) {
            return Err("limits.write_timeout of zero expires every write immediately".into());
        }
        if self.max_connections == Some(0) {
            return Err("max_connections = Some(0) accepts nothing; use None for unlimited".into());
        }
        Ok(())
    }
}

/// The default shard count.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Handle to a running service.
pub struct ServiceHandle {
    closer: Box<dyn Fn() + Send + Sync>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    desc: String,
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("desc", &self.desc)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ServiceHandle {
    /// Bound-address description of the served listener.
    pub fn desc(&self) -> &str {
        &self.desc
    }

    /// Stops accepting, serves queued and in-flight connections to
    /// completion, and joins all threads.
    pub fn shutdown(mut self) {
        (self.closer)();
        self.join_threads();
    }

    /// Waits for the service to finish on its own (listener closed or
    /// `max_connections` reached and all connections served).
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

/// Serves `listener` against `server` on `config.workers` shard event
/// loops. Returns immediately; use the handle to shut down or join.
///
/// # Panics
///
/// If `config` fails [`ServiceConfig::validate`] — a config that cannot
/// serve is a deployment bug, and failing at startup beats hanging every
/// client at runtime.
pub fn serve<L: Listener + 'static>(
    mut listener: L,
    server: Arc<AuthServer>,
    config: ServiceConfig,
) -> ServiceHandle {
    if let Err(why) = config.validate() {
        panic!("invalid ServiceConfig: {why}");
    }
    let desc = listener.local_desc();
    let closer = listener.closer();
    let shards = config.workers;

    let mut injectors: Vec<SyncSender<BoxedWire>> = Vec::with_capacity(shards);
    let shard_threads: Vec<JoinHandle<()>> = (0..shards)
        .map(|_| {
            // Bounded injector: a flood of connections blocks accept, not
            // memory — the same backpressure point the worker pool had.
            let (tx, rx) = sync_channel::<BoxedWire>(INJECTOR_DEPTH);
            injectors.push(tx);
            let server = Arc::clone(&server);
            let limits = config.limits;
            let faults = config.faults.clone();
            std::thread::spawn(move || shard::shard_loop(rx, server, limits, faults))
        })
        .collect();

    let max = config.max_connections;
    let accept = std::thread::spawn(move || {
        let mut served = 0usize;
        while let Some(wire) = listener.accept() {
            // Round-robin over shards; a full injector blocks here.
            if injectors[served % injectors.len()].send(wire).is_err() {
                break;
            }
            served += 1;
            if max.is_some_and(|m| served >= m) {
                break;
            }
        }
        // Dropping the injectors lets shards drain and exit.
    });

    ServiceHandle { closer, accept: Some(accept), workers: shard_threads, desc }
}

/// Serves one connection: frames in, session state machine, frames out.
/// Returns when the peer disconnects cleanly; wire abuse (oversized
/// declared lengths, truncated frames, read timeouts) drops the
/// connection with the error.
///
/// This blocking loop and the shard event loop share the session state
/// machine, so there is exactly one handshake path; the in-process
/// transport and the doctests use this entry point directly.
///
/// # Errors
///
/// Propagates wire-level I/O errors (the connection is dead either way).
pub fn serve_connection<W: crate::transport::Wire>(
    server: &AuthServer,
    framed: &mut Framed<W>,
) -> io::Result<()> {
    let mut session = server.new_session();
    loop {
        match framed.recv()? {
            Some((req, payload)) => match session.handle(server, req, &payload) {
                Ok(body) => framed.send(STATUS_OK, &body)?,
                Err(e) => framed.send(server_error_to_status(&e), &[])?,
            },
            None => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::SecretMeta;
    use crate::server::ExpectedIdentity;
    use crate::transport::channel::channel_listener;
    use crate::transport::tcp::TcpAcceptor;
    use elide_crypto::rng::SeededRandom;
    use sgx_sim::quote::AttestationService;

    fn test_server() -> Arc<AuthServer> {
        let meta = SecretMeta {
            flags: 0,
            data_len: 4,
            text_len: 4,
            restore_offset: 0,
            key: [1; 16],
            iv: [2; 12],
            tag: [3; 16],
        };
        Arc::new(
            AuthServer::new(
                meta,
                b"data".to_vec(),
                ExpectedIdentity::default(),
                AttestationService::new(),
            )
            .with_rng(Box::new(SeededRandom::new(1))),
        )
    }

    #[test]
    fn serves_channel_clients_and_shuts_down() {
        let (listener, host) = channel_listener();
        let handle = serve(listener, test_server(), ServiceConfig::default().with_workers(2));
        for _ in 0..4 {
            let wire = host.connect().unwrap();
            let mut framed = Framed::new(wire, Limits::default()).unwrap();
            // Unknown request: the session must answer with a status frame.
            framed.send(9, &[]).unwrap();
            let (status, body) = framed.recv().unwrap().expect("response");
            assert_eq!(status, 6, "UnknownRequest status");
            assert!(body.is_empty());
        }
        handle.shutdown();
        assert!(
            host.connect().is_err() || {
                // Shutdown raced the connect; either way no response comes.
                true
            }
        );
    }

    #[test]
    fn serves_tcp_clients_with_max_connections() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        let handle = serve(
            acceptor,
            test_server(),
            ServiceConfig::default().with_workers(2).with_max_connections(Some(2)),
        );
        for _ in 0..2 {
            let stream = std::net::TcpStream::connect(addr).unwrap();
            let mut framed = Framed::new(stream, Limits::default()).unwrap();
            framed.send(1, &[]).unwrap();
            let (status, _) = framed.recv().unwrap().expect("response");
            assert_eq!(status, 4, "NoSession status");
        }
        handle.join();
    }

    #[test]
    fn worker_pool_survives_connection_panics() {
        use crate::faults::{FaultConfig, FaultPlan, PPM};
        // Regression: a worker that panicked mid-connection died silently,
        // shrinking the pool; with one worker the service stopped serving
        // and every later client hung until its read timeout. The shard
        // loop inherits the invariant: an injected panic kills only its
        // connection.
        crate::faults::silence_injected_panics();
        let plan = FaultPlan::new(
            11,
            FaultConfig { worker_panic_ppm: PPM, worker_panic_limit: 1, ..FaultConfig::off() },
        );
        let (listener, host) = channel_listener();
        let handle = serve(
            listener,
            test_server(),
            ServiceConfig::default().with_workers(1).with_faults(plan.clone()),
        );

        // First connection: the shard's admission panics; the client sees
        // the connection drop without a response.
        let wire = host.connect().unwrap();
        let mut framed = Framed::new(wire, Limits::default()).unwrap();
        framed.send(9, &[]).unwrap();
        assert_eq!(framed.recv().unwrap(), None, "panicked connection drops cleanly");
        assert_eq!(plan.counts().worker_panics, 1);

        // Second connection: the same shard must still be alive.
        let wire = host.connect().unwrap();
        let mut framed = Framed::new(wire, Limits::default()).unwrap();
        framed.send(9, &[]).unwrap();
        let (status, _) = framed.recv().unwrap().expect("shard survived the panic");
        assert_eq!(status, 6, "UnknownRequest status");
        handle.shutdown();
    }

    #[test]
    fn store_io_fault_sits_behind_authentication() {
        use crate::faults::{FaultConfig, FaultPlan, PPM};
        // Store faults fire on META/DATA of an *established* session (the
        // chaos suite exercises that path end-to-end); an unauthenticated
        // request must still answer NoSession, not Internal.
        let server = Arc::new(
            AuthServer::new(
                SecretMeta {
                    flags: 0,
                    data_len: 4,
                    text_len: 4,
                    restore_offset: 0,
                    key: [1; 16],
                    iv: [2; 12],
                    tag: [3; 16],
                },
                b"data".to_vec(),
                ExpectedIdentity::default(),
                AttestationService::new(),
            )
            .with_rng(Box::new(SeededRandom::new(2)))
            .with_faults(FaultPlan::new(
                3,
                FaultConfig { store_io_ppm: PPM, ..FaultConfig::off() },
            )),
        );
        // No attested session: NoSession (4) outranks the injected fault,
        // proving injection sits behind authentication, not in front.
        let (listener, host) = channel_listener();
        let handle = serve(listener, server, ServiceConfig::default().with_workers(1));
        let wire = host.connect().unwrap();
        let mut framed = Framed::new(wire, Limits::default()).unwrap();
        framed.send(1, &[]).unwrap();
        let (status, _) = framed.recv().unwrap().expect("response");
        assert_eq!(status, 4, "store faults only fire on established sessions");
        handle.shutdown();
    }

    #[test]
    fn oversized_frame_drops_connection() {
        let (listener, host) = channel_listener();
        let limits = Limits::default().with_max_frame(64);
        let handle = serve(
            listener,
            test_server(),
            ServiceConfig::default().with_workers(1).with_limits(limits),
        );
        let wire = host.connect().unwrap();
        // Client side uses generous limits so it can send the abuse.
        let mut framed = Framed::new(wire, Limits::default()).unwrap();
        framed.send(1, &[0u8; 1000]).unwrap();
        // Server drops the connection without a response.
        assert_eq!(framed.recv().unwrap(), None);
        handle.shutdown();
    }

    #[test]
    fn zero_workers_is_rejected_at_construction() {
        let r = std::panic::catch_unwind(|| ServiceConfig::default().with_workers(0));
        assert!(r.is_err(), "with_workers(0) must panic");
        let broken = ServiceConfig { workers: 0, ..ServiceConfig::default() };
        assert!(broken.validate().unwrap_err().contains("workers"));
    }

    #[test]
    fn absurd_limits_fail_validation() {
        use std::time::Duration;
        let ok = ServiceConfig::default();
        assert!(ok.validate().is_ok());

        let mut zero_frame = ServiceConfig::default();
        zero_frame.limits.max_frame = 0;
        assert!(zero_frame.validate().unwrap_err().contains("max_frame"));

        let mut zero_read = ServiceConfig::default();
        zero_read.limits.read_timeout = Some(Duration::ZERO);
        assert!(zero_read.validate().unwrap_err().contains("read_timeout"));

        let mut zero_write = ServiceConfig::default();
        zero_write.limits.write_timeout = Some(Duration::ZERO);
        assert!(zero_write.validate().unwrap_err().contains("write_timeout"));

        let capped = ServiceConfig::default().with_max_connections(Some(0));
        assert!(capped.validate().unwrap_err().contains("max_connections"));

        let absurd = ServiceConfig { workers: 1 << 20, ..ServiceConfig::default() };
        assert!(absurd.validate().unwrap_err().contains("maximum"));
    }

    #[test]
    fn serve_rejects_invalid_config_loudly() {
        let (listener, _host) = channel_listener();
        let broken = ServiceConfig { workers: 0, ..ServiceConfig::default() };
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve(listener, test_server(), broken)
        }));
        assert!(r.is_err(), "serve must refuse a config that cannot serve");
    }
}
