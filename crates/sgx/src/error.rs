//! Error model for the SGX simulator — mirrors the fault/#GP conditions the
//! real instructions raise.

use std::fmt;

/// Errors raised by simulated SGX instructions and enclave memory accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SgxError {
    /// Operation requires an initialized enclave (`EINIT` not yet run).
    NotInitialized,
    /// `EADD`/`EEXTEND` after `EINIT` — SGX-v1 forbids post-init changes,
    /// which is exactly why SgxElide must restore code *through* ordinary
    /// writes to pages that were writable at `EADD` time.
    AlreadyInitialized,
    /// Address outside the enclave's linear range (ELRANGE).
    OutOfRange {
        /// Offending address.
        addr: u64,
    },
    /// Address not page-aligned where alignment is architectural.
    BadAlignment {
        /// Offending address.
        addr: u64,
    },
    /// Access to a page that was never `EADD`ed.
    PageNotPresent {
        /// Offending address.
        addr: u64,
    },
    /// Access denied by the page permissions fixed at `EADD`.
    PermissionDenied {
        /// Offending address.
        addr: u64,
    },
    /// SIGSTRUCT signature did not verify.
    BadSigstruct,
    /// SIGSTRUCT measurement does not match the enclave's MRENCLAVE.
    MeasurementMismatch {
        /// What SIGSTRUCT declared.
        expected: [u8; 32],
        /// What the hardware measured.
        actual: [u8; 32],
    },
    /// A report MAC failed to verify.
    ReportMacMismatch,
    /// A quote signature failed to verify or the device is unknown.
    BadQuote,
    /// Sealed/evicted data failed authentication.
    SealAuthFailed,
    /// An evicted page was replayed (version counter mismatch).
    ReplayDetected,
    /// `EEXTEND` chunk must be 256 bytes within one page.
    BadExtendChunk,
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgxError::NotInitialized => write!(f, "enclave is not initialized"),
            SgxError::AlreadyInitialized => {
                write!(f, "enclave already initialized (SGX-v1 forbids this operation)")
            }
            SgxError::OutOfRange { addr } => write!(f, "address {addr:#x} outside ELRANGE"),
            SgxError::BadAlignment { addr } => write!(f, "address {addr:#x} is misaligned"),
            SgxError::PageNotPresent { addr } => write!(f, "no EPC page at {addr:#x}"),
            SgxError::PermissionDenied { addr } => {
                write!(f, "EPC permission denied at {addr:#x}")
            }
            SgxError::BadSigstruct => write!(f, "SIGSTRUCT signature invalid"),
            SgxError::MeasurementMismatch { .. } => {
                write!(f, "SIGSTRUCT measurement does not match MRENCLAVE")
            }
            SgxError::ReportMacMismatch => write!(f, "report MAC mismatch"),
            SgxError::BadQuote => write!(f, "quote verification failed"),
            SgxError::SealAuthFailed => write!(f, "sealed data failed authentication"),
            SgxError::ReplayDetected => write!(f, "evicted page replay detected"),
            SgxError::BadExtendChunk => write!(f, "EEXTEND chunk must be 256 bytes in one page"),
        }
    }
}

impl std::error::Error for SgxError {}
